package sb

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"isinglut/internal/fault"
	"isinglut/internal/ising"
	"isinglut/internal/metrics"
)

// exactQuantProblem builds a spin glass whose couplings are integer
// multiples of 2⁻⁵ with |k| ∈ [64, 127]: the int8 scale comes out as
// exactly 2⁻⁵, quantization is lossless, and the quantized trajectory
// must be bit-identical to the float one end to end.
func exactQuantProblem(n int, seed int64) *ising.Problem {
	rng := rand.New(rand.NewSource(seed))
	d := ising.NewDense(n)
	const ulp = 1.0 / 32
	d.Set(0, 1, 127*ulp)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i == 0 && j == 1 {
				continue
			}
			k := 64 + rng.Intn(64)
			if rng.Intn(2) == 0 {
				k = -k
			}
			d.Set(i, j, float64(k)*ulp)
		}
	}
	p, err := ising.NewProblem(d, nil, 0)
	if err != nil {
		panic(err)
	}
	return p
}

// quantParams is divergenceParams for the discrete variant with the
// quantized fast path requested.
func quantParams() Params {
	base := divergenceParams(Discrete)
	base.Quantize = true
	return base
}

func assertSameTrajectory(t *testing.T, a, b Result, context string) {
	t.Helper()
	if math.Float64bits(a.Energy) != math.Float64bits(b.Energy) {
		t.Fatalf("%s: energy %g vs %g", context, a.Energy, b.Energy)
	}
	if a.Iterations != b.Iterations || a.Stopped != b.Stopped || a.Diverged != b.Diverged {
		t.Fatalf("%s: trajectory shape differs: %+v vs %+v", context,
			[]any{a.Iterations, a.Stopped, a.Diverged}, []any{b.Iterations, b.Stopped, b.Diverged})
	}
	for i := range a.Spins {
		if a.Spins[i] != b.Spins[i] {
			t.Fatalf("%s: spin %d differs", context, i)
		}
	}
}

// TestQuantExactRepresentableMatchesFloat: on a losslessly-quantizable
// coupling the quantized dSB solve is bit-identical to the float solve —
// fields, trajectory, sample energies, final spins.
func TestQuantExactRepresentableMatchesFloat(t *testing.T) {
	p := exactQuantProblem(20, 5)
	params := divergenceParams(Discrete)
	exact := Solve(p, params)
	params.Quantize = true
	quant := Solve(p, params)
	if !quant.Quantized {
		t.Fatal("quantized fast path not taken")
	}
	if exact.Quantized {
		t.Fatal("float solve reports Quantized")
	}
	assertSameTrajectory(t, exact, quant, "exact-representable dSB")
}

// TestQuantFusedMatchesFuseOff pins the engine bit-identity contract on
// the quantized path, for dense and CSR couplers: the per-replica
// goroutine engine (each worker quantizing independently) and the fused
// lock-step engine must agree bitwise on every replica.
func TestQuantFusedMatchesFuseOff(t *testing.T) {
	const replicas = 4
	for _, tc := range []struct {
		name string
		p    *ising.Problem
	}{
		{"dense", randomProblem(24, 7)},
		{"csr", randomSparseProblem(48, 11, true)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := quantParams()
			resOff, statsOff := SolveBatch(context.Background(), tc.p, BatchParams{
				Base: base, Replicas: replicas, Fused: FuseOff,
			})
			resOn, statsOn := SolveBatch(context.Background(), tc.p, BatchParams{
				Base: base, Replicas: replicas, Fused: FuseOn,
			})
			if !resOff.Quantized || !resOn.Quantized {
				t.Fatalf("fast path not taken: FuseOff=%v FuseOn=%v", resOff.Quantized, resOn.Quantized)
			}
			assertBatchesIdentical(t, resOff, resOn, statsOff, statsOn)
		})
	}
}

// TestQuantIgnoredOutsideDiscrete: Quantize on a ballistic solve is a
// silent no-op — bit-identical to the plain run, Quantized false.
func TestQuantIgnoredOutsideDiscrete(t *testing.T) {
	p := randomProblem(16, 3)
	params := divergenceParams(Ballistic)
	plain := Solve(p, params)
	params.Quantize = true
	quant := Solve(p, params)
	if quant.Quantized {
		t.Fatal("Quantized reported on a ballistic solve")
	}
	assertSameTrajectory(t, plain, quant, "bSB with Quantize set")
}

// TestQuantOverflowFallbackBothEngines: with the overflow failpoint
// forcing Quantize to fail, both engines must degrade to the float path
// bit-identically (Quantized false, same trajectory as a plain solve).
func TestQuantOverflowFallbackBothEngines(t *testing.T) {
	const replicas = 3
	p := randomProblem(20, 9)
	base := divergenceParams(Discrete)
	exactOff, exactStats := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOff,
	})

	defer fault.DisarmAll()
	base.Quantize = true
	fault.MustArm("ising.quant.overflow", fault.Scenario{Times: -1})
	fbOff, fbOffStats := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOff,
	})
	fault.MustArm("ising.quant.overflow", fault.Scenario{Times: -1})
	fbOn, fbOnStats := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOn,
	})
	fault.DisarmAll()

	if fbOff.Quantized || fbOn.Quantized {
		t.Fatal("Quantized reported after a forced quantization failure")
	}
	assertSameTrajectory(t, exactOff, fbOff, "FuseOff fallback")
	assertBatchesIdentical(t, fbOff, fbOn, fbOffStats, fbOnStats)
	assertBatchesIdentical(t, exactOff, fbOn, exactStats, fbOnStats)
}

// TestQuantDivergenceQuarantineBothEngines: the keyed sb.diverge fault on
// one quantized replica must quarantine exactly that replica in both
// engines, bit-identically — the divergence guards do not care which
// field kernel produced the poisoned trajectory.
func TestQuantDivergenceQuarantineBothEngines(t *testing.T) {
	const replicas = 4
	const victim = 2
	p := randomSparseProblem(32, 13, true)
	base := quantParams()
	key := base.Seed + int64(victim)

	fault.MustArm("sb.diverge", fault.Scenario{Keys: []int64{key}, Times: -1})
	defer fault.DisarmAll()
	resOff, statsOff := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOff,
	})
	fault.MustArm("sb.diverge", fault.Scenario{Keys: []int64{key}, Times: -1})
	resOn, statsOn := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOn,
	})

	for _, st := range []Stats{statsOff, statsOn} {
		if !st.Diverged[victim] || st.Diverges != 1 {
			t.Fatalf("Diverged = %v (count %d), want replica %d quarantined", st.Diverged, st.Diverges, victim)
		}
		if st.Stopped[victim] != metrics.StopDiverged {
			t.Fatalf("diverged replica stop %v, want StopDiverged", st.Stopped[victim])
		}
		if st.BestReplica == victim {
			t.Fatal("diverged replica won the batch")
		}
	}
	if !resOff.Quantized || !resOn.Quantized {
		t.Fatal("fast path not taken under the keyed fault")
	}
	assertBatchesIdentical(t, resOff, resOn, statsOff, statsOn)
}

// TestQuantAccumPoisonDiverges: an always-firing accumulate fault poisons
// the quantized field, and the standard divergence guard must catch it at
// the sample cadence rather than let NaN spins escape.
func TestQuantAccumPoisonDiverges(t *testing.T) {
	p := randomSparseProblem(24, 17, false)
	params := quantParams()

	defer fault.DisarmAll()
	fault.MustArm("ising.quant.accum", fault.Scenario{After: 3, Times: -1})
	res := Solve(p, params)
	if !res.Quantized {
		t.Fatal("fast path not taken")
	}
	if !res.Diverged || !math.IsInf(res.Energy, 1) {
		t.Fatalf("poisoned quantized run not quarantined: diverged=%v energy=%g", res.Diverged, res.Energy)
	}
	for _, s := range res.Spins {
		if s != 1 && s != -1 {
			t.Fatalf("invalid spin %d in quarantined result", s)
		}
	}
}
