package sb

import (
	"context"
	"math"
	"math/rand"
	"time"

	"isinglut/internal/ising"
	"isinglut/internal/metrics"
)

// FuseMode selects how SolveBatch executes its replica portfolio.
type FuseMode int

const (
	// FuseAuto (the zero value) fuses whenever the batch is eligible:
	// more than one replica and no per-replica control flow (no OnSample
	// hook, no MakeOnSample factory, no trace recording).
	FuseAuto FuseMode = iota
	// FuseOn forces the fused engine; ineligible parameters panic.
	FuseOn
	// FuseOff forces the per-replica goroutine engine.
	FuseOff
)

// fusedEligible reports whether a batch can run on the fused engine.
// Per-replica sample hooks and trace recording force divergent per-replica
// control flow (and per-replica allocations), which the lock-step engine
// deliberately does not support.
func fusedEligible(bp BatchParams) bool {
	return bp.Base.OnSample == nil && bp.MakeOnSample == nil && !bp.Base.RecordTrace
}

// FusedWorkspace owns every buffer a fused multi-replica run needs. Lane
// state (positions, momenta, dSB signs, rounded spins, energy scratch) is
// stored as n×r column-major blocks — lane l occupies [l*n:(l+1)*n] — so
// the whole block feeds ising.FieldBatch directly and any single lane is
// a valid scalar vector. Best-so-far spins and the per-replica counters
// are indexed by replica, not lane: lanes are compacted as replicas
// retire, replicas are not.
//
// Like Workspace, a FusedWorkspace is not safe for concurrent use, and a
// warm one makes SolveFusedWith allocation-free per step (the per-call
// Stats slices are the only allocations).
type FusedWorkspace struct {
	x, y []float64 // oscillator lanes, n×r
	sgn  []float64 // dSB sign lanes, n×r
	xs   []float64 // float64 spin view lanes for energy evaluation, n×r
	fld  []float64 // field-product lanes, n×r

	spins []int8 // rounded-spin lane scratch, n×r
	best  []int8 // best rounded spins, n×replicas, replica-indexed

	bestE       []float64 // per replica
	lastSampled []int     // per replica
	samples     []int     // per replica
	rescued     []bool    // per replica: divergence rescue already spent
	laneReplica []int     // lane -> replica mapping, compacted with the lanes
	dts         []float64 // per-lane time step (damped by a rescue), compacted
	windows     []energyWindow

	rng *rand.Rand
}

// NewFusedWorkspace returns a workspace pre-sized for n-spin problems
// with r replicas. Like Workspace, sizing is an optimization, not a
// contract: the workspace grows on demand.
func NewFusedWorkspace(n, r int) *FusedWorkspace {
	fw := &FusedWorkspace{}
	fw.ensure(n, r)
	return fw
}

// ensure sizes every buffer for an n-spin, r-replica run, reusing
// existing capacity.
func (fw *FusedWorkspace) ensure(n, r int) {
	if fw.rng == nil {
		fw.rng = rand.New(rand.NewSource(0))
	}
	if cap(fw.x) < n*r {
		fw.x = make([]float64, n*r)
		fw.y = make([]float64, n*r)
		fw.sgn = make([]float64, n*r)
		fw.xs = make([]float64, n*r)
		fw.fld = make([]float64, n*r)
		fw.spins = make([]int8, n*r)
		fw.best = make([]int8, n*r)
	}
	fw.x = fw.x[:n*r]
	fw.y = fw.y[:n*r]
	fw.sgn = fw.sgn[:n*r]
	fw.xs = fw.xs[:n*r]
	fw.fld = fw.fld[:n*r]
	fw.spins = fw.spins[:n*r]
	fw.best = fw.best[:n*r]
	if cap(fw.bestE) < r {
		fw.bestE = make([]float64, r)
		fw.lastSampled = make([]int, r)
		fw.samples = make([]int, r)
		fw.rescued = make([]bool, r)
		fw.laneReplica = make([]int, r)
		fw.dts = make([]float64, r)
		fw.windows = make([]energyWindow, r)
	}
	fw.bestE = fw.bestE[:r]
	fw.lastSampled = fw.lastSampled[:r]
	fw.samples = fw.samples[:r]
	fw.rescued = fw.rescued[:r]
	fw.laneReplica = fw.laneReplica[:r]
	fw.dts = fw.dts[:r]
	fw.windows = fw.windows[:r]
}

// SolveFused runs a replica batch on the fused lock-step engine: every
// replica advances through the same Euler step together, so each step
// streams the coupling structure exactly once (ising.FieldBatch) instead
// of once per replica. Replica trajectories are bit-identical to
// SolveBatch with FuseOff for equal Base.Seed — same winner, same
// per-replica Stats — because each lane reproduces SolveWith's arithmetic
// exactly; only wall-clock scheduling differs.
//
// Per-replica dynamic-stop windows are evaluated lane-wise: a replica
// whose §3.3.1 criterion fires is retired and its lane compacted out, so
// the batch narrows (and each step gets cheaper) as replicas converge.
// Cancellation retires every active lane at the shared poll cadence;
// under an already-cancelled context only replica 0 is launched, matching
// the SolveBatch dispatch contract.
//
// BatchParams.Workers is ignored: the engine is single-goroutine by
// design — the shared matrix stream is the bottleneck the fusion removes,
// and lock-step lanes would serialize on it anyway. Per-replica OnSample
// hooks, MakeOnSample factories, and RecordTrace are unsupported and
// panic; use FuseOff (or plain SolveBatch, which auto-falls-back) for
// those.
func SolveFused(ctx context.Context, p *ising.Problem, bp BatchParams) (Result, Stats) {
	r := bp.Replicas
	if r <= 0 {
		r = 4
	}
	return SolveFusedWith(ctx, p, bp, NewFusedWorkspace(p.N(), r))
}

// SolveFusedWith is SolveFused running inside a caller-owned workspace.
// After warm-up the engine performs zero heap allocations per step; the
// only per-call allocations are the returned Stats slices (pinned by the
// allocation-regression test). Result.Spins aliases workspace memory and
// is valid until the next call on the same workspace.
func SolveFusedWith(ctx context.Context, p *ising.Problem, bp BatchParams, fw *FusedWorkspace) (Result, Stats) {
	batchStart := time.Now()
	n := p.N()
	params := bp.Base
	replicas := bp.Replicas
	if replicas <= 0 {
		replicas = 4
	}
	if params.OnSample != nil || bp.MakeOnSample != nil {
		panic("sb: fused batch cannot run per-replica OnSample hooks (use FuseOff)")
	}
	if params.RecordTrace {
		panic("sb: fused batch cannot record per-replica traces (use FuseOff)")
	}
	if params.Steps <= 0 {
		panic("sb: Steps must be positive")
	}
	if params.Dt <= 0 {
		panic("sb: Dt must be positive")
	}
	a0 := params.A0
	if a0 <= 0 {
		a0 = 1
	}
	c0 := params.C0
	if c0 == 0 {
		c0 = autoC0(p) // resolved once per batch, not once per replica
	}
	sampleEvery := params.SampleEvery
	if sampleEvery <= 0 {
		if params.Stop != nil {
			sampleEvery = params.Stop.F
		} else {
			sampleEvery = 0
		}
	}
	stopF := 0
	minIters := 0
	if params.Stop != nil {
		if params.Stop.F <= 0 || params.Stop.S <= 1 {
			panic("sb: StopCriteria needs F >= 1 and S >= 2")
		}
		stopF = params.Stop.F
		minIters = params.Stop.MinIters
		if minIters <= 0 {
			minIters = params.Steps / 2
		}
	}
	ctxEvery := 0
	if ctx.Done() != nil {
		switch {
		case sampleEvery > 0:
			ctxEvery = sampleEvery
		case stopF > 0:
			ctxEvery = stopF
		default:
			ctxEvery = 64
		}
	}

	// Quantize once per batch (same policy as SolveWith): a nil quant is
	// the float64 path. Sample-point and stop-window energies below always
	// evaluate against the exact float coupling either way.
	var quant *ising.Quantized
	if (params.Quantize || params.BitPack) && params.Variant == Discrete {
		quant, _ = ising.Quantize(p.Coup)
	}
	// BitPack re-packs the codes into popcount bit-planes (nil: heuristic
	// rejection or failed quantization — the scalar quantized kernels run
	// instead, bit-identically).
	var planes *ising.Planes
	if params.BitPack && quant != nil {
		planes, _ = ising.NewPlanes(quant)
	}

	stats := Stats{
		Replicas:     replicas,
		Energies:     make([]float64, replicas),
		Iterations:   make([]int, replicas),
		Stopped:      make([]metrics.StopReason, replicas),
		EarlyStopped: make([]bool, replicas),
		Diverged:     make([]bool, replicas),
		Rescued:      make([]bool, replicas),
		BatchStopped: metrics.StopMaxIters,
		BestReplica:  -1,
	}
	// Position scan gating matches SolveWith: only the wall-clamped
	// variants treat a non-finite position as proof of corruption.
	scanX := params.Variant != Adiabatic
	for r := range stats.Energies {
		stats.Energies[r] = math.Inf(1)
	}

	// An already-cancelled context launches exactly replica 0 (the batch
	// contract: never return nothing, never start work that is already
	// cancelled). Replicas 1..n keep the unlaunched sentinels.
	launch := replicas
	if ctx.Err() != nil {
		launch = 1
	}
	stats.Launched = launch

	fw.ensure(n, replicas)
	// Lane initialization replays SolveWith's draws per replica: reseed,
	// then per spin the momentum before the position.
	for l := 0; l < launch; l++ {
		fw.rng.Seed(params.Seed + int64(l))
		xl := fw.x[l*n : l*n+n]
		yl := fw.y[l*n : l*n+n]
		for i := 0; i < n; i++ {
			yl[i] = (fw.rng.Float64()*2 - 1) * params.InitAmplitude
			xl[i] = (fw.rng.Float64()*2 - 1) * params.InitAmplitude * 0.01
		}
		fw.laneReplica[l] = l
		fw.bestE[l] = math.Inf(1)
		fw.lastSampled[l] = -1
		fw.samples[l] = 0
		fw.rescued[l] = false
		fw.dts[l] = params.Dt
		fw.windows[l].reset(windowSize(params))
	}
	// dSB reads sign(x) in the field product. The signs are maintained
	// incrementally — seeded here, then refreshed inside the integrator's
	// clamp loop — so the per-step field path never runs a separate n×r
	// sign materialization pass.
	if params.Variant == Discrete {
		for l := 0; l < launch; l++ {
			xl := fw.x[l*n : l*n+n]
			sl := fw.sgn[l*n : l*n+n]
			for i, v := range xl {
				if v >= 0 {
					sl[i] = 1
				} else {
					sl[i] = -1
				}
			}
		}
	}
	active := launch

	// retire finalizes lane l's replica at iteration it and compacts the
	// last active lane into its slot, narrowing the batch. The final
	// sample mirrors SolveWith's post-loop evaluation (scalar: it runs
	// once per replica per batch, not per step) — including its divergence
	// check: non-finite state found here overrides the nominal retirement
	// reason with a quarantine, exactly as the scalar engine's post-loop
	// sample does.
	retire := func(l, it int, reason metrics.StopReason, early bool) {
		r := fw.laneReplica[l]
		if fw.lastSampled[r] != it {
			sp := fw.spins[l*n : l*n+n]
			ising.SignsInto(fw.x[l*n:l*n+n], sp)
			e := p.EnergySpinsInto(sp, fw.xs[l*n:l*n+n], fw.fld[l*n:l*n+n])
			fw.samples[r]++
			if siteDiverge.FireKey(params.Seed + int64(r)) {
				e = math.NaN()
			}
			switch {
			case !isFinite(e) || (scanX && !allFinite(fw.x[l*n:l*n+n])):
				reason = metrics.StopDiverged
				early = false
				if math.IsInf(fw.bestE[r], 1) {
					copy(fw.best[r*n:(r+1)*n], sp)
				}
				fw.bestE[r] = math.Inf(1)
				stats.Diverged[r] = true
			case e < fw.bestE[r]:
				fw.bestE[r] = e
				copy(fw.best[r*n:(r+1)*n], sp)
			}
			fw.lastSampled[r] = it
		}
		stats.Energies[r] = fw.bestE[r]
		stats.Iterations[r] = it
		stats.Stopped[r] = reason
		stats.EarlyStopped[r] = early
		met.ObserveRun(time.Since(batchStart), reason)
		met.Iterations.Add(int64(it))
		met.Samples.Add(int64(fw.samples[r]))
		met.ObserveEnergy(fw.bestE[r])
		last := active - 1
		if l != last {
			copy(fw.x[l*n:l*n+n], fw.x[last*n:last*n+n])
			copy(fw.y[l*n:l*n+n], fw.y[last*n:last*n+n])
			if params.Variant == Discrete {
				copy(fw.sgn[l*n:l*n+n], fw.sgn[last*n:last*n+n])
			}
			// Swap the window structs (not just contents) so the retired
			// lane's ring buffer stays owned by exactly one slot.
			fw.windows[l], fw.windows[last] = fw.windows[last], fw.windows[l]
			fw.laneReplica[l] = fw.laneReplica[last]
			fw.dts[l] = fw.dts[last]
		}
		active--
	}

	// rescue is the one-shot divergence rescue, mirroring SolveWith: the
	// lane is re-seeded from its replica seed (replaying the init draws),
	// its time step halved, and its §3.3.1 window reset. The shared RNG is
	// reseeded per lane, so trajectories stay deterministic no matter how
	// many lanes rescue in one sample pass.
	rescue := func(l, r int) {
		fw.rescued[r] = true
		stats.Rescued[r] = true
		met.Rescues.Inc()
		fw.dts[l] *= 0.5
		fw.rng.Seed(params.Seed + int64(r))
		xl := fw.x[l*n : l*n+n]
		yl := fw.y[l*n : l*n+n]
		for i := 0; i < n; i++ {
			yl[i] = (fw.rng.Float64()*2 - 1) * params.InitAmplitude
			xl[i] = (fw.rng.Float64()*2 - 1) * params.InitAmplitude * 0.01
		}
		if params.Variant == Discrete {
			sl := fw.sgn[l*n : l*n+n]
			for i, v := range xl {
				if v >= 0 {
					sl[i] = 1
				} else {
					sl[i] = -1
				}
			}
		}
		fw.windows[l].reset(windowSize(params))
	}

	// sample inspects every active lane's rounded solution at iteration
	// it: one batched field product over the ±1 spin views, then a
	// per-lane energy reduction replicating EnergyContinuousInto's order.
	// Lanes are scanned top-down (like the stop-check loop) so a
	// quarantine's compaction moves an already-processed lane into the
	// vacated slot, never an unprocessed one.
	sample := func(it int) {
		ab := active * n
		for l := 0; l < active; l++ {
			sp := fw.spins[l*n : l*n+n]
			ising.SignsInto(fw.x[l*n:l*n+n], sp)
			xs := fw.xs[l*n : l*n+n]
			for i, s := range sp {
				xs[i] = float64(s)
			}
		}
		ising.FieldBatch(p.Coup, fw.xs[:ab], fw.fld[:ab], active)
		for l := active - 1; l >= 0; l-- {
			xs := fw.xs[l*n : l*n+n]
			f := fw.fld[l*n : l*n+n]
			e := 0.0
			for i := 0; i < n; i++ {
				e -= 0.5 * f[i] * xs[i]
				e -= p.Bias(i) * xs[i]
			}
			r := fw.laneReplica[l]
			fw.samples[r]++
			if siteDiverge.FireKey(params.Seed + int64(r)) {
				e = math.NaN()
			}
			fw.lastSampled[r] = it
			if !isFinite(e) || (scanX && !allFinite(fw.x[l*n:l*n+n])) {
				if params.RescueDiverged && !fw.rescued[r] {
					rescue(l, r)
				} else {
					// Quarantine: +Inf energy, last rounded state when no
					// finite sample was ever recorded (SolveWith's contract).
					if math.IsInf(fw.bestE[r], 1) {
						copy(fw.best[r*n:(r+1)*n], fw.spins[l*n:l*n+n])
					}
					fw.bestE[r] = math.Inf(1)
					stats.Diverged[r] = true
					retire(l, it, metrics.StopDiverged, false)
				}
				continue
			}
			if e < fw.bestE[r] {
				fw.bestE[r] = e
				copy(fw.best[r*n:(r+1)*n], fw.spins[l*n:l*n+n])
			}
		}
	}

	// The time step is per lane (fw.dts): identical to params.Dt
	// everywhere until a rescue damps one lane's step, so the no-fault
	// arithmetic stays bit-identical to the shared-scalar form.
	steps := params.Steps
	for iter := 0; iter < steps && active > 0; iter++ {
		at := a0 * float64(iter) / float64(steps) // shared pump ramp 0 -> a0
		ab := active * n

		// One traversal of the coupling structure serves every lane. The
		// quantized path (dSB-only) consumes the same incrementally
		// maintained sign lanes the float dSB product reads, so the two
		// paths see identical spins step for step.
		switch {
		case planes != nil:
			planes.FieldSignsBatch(fw.sgn[:ab], fw.fld[:ab], active)
		case quant != nil:
			quant.FieldSignsBatch(fw.sgn[:ab], fw.fld[:ab], active)
		default:
			src := fw.x
			if params.Variant == Discrete {
				src = fw.sgn
			}
			ising.FieldBatch(p.Coup, src[:ab], fw.fld[:ab], active)
		}
		if p.H != nil {
			for l := 0; l < active; l++ {
				f := fw.fld[l*n : l*n+n]
				for i, h := range p.H {
					f[i] += h
				}
			}
		}

		// The per-lane updates use SolveWith's exact expression shapes so
		// the compiled floating-point sequence (including any FMA fusing)
		// matches the scalar engine term for term.
		switch params.Variant {
		case Adiabatic:
			for l := 0; l < active; l++ {
				x := fw.x[l*n : l*n+n]
				y := fw.y[l*n : l*n+n]
				f := fw.fld[l*n : l*n+n]
				dt := fw.dts[l]
				for i := 0; i < n; i++ {
					y[i] += dt * (-(x[i]*x[i]+a0-at)*x[i] + c0*f[i])
					x[i] += dt * a0 * y[i]
				}
			}
		case Discrete:
			for l := 0; l < active; l++ {
				x := fw.x[l*n : l*n+n]
				y := fw.y[l*n : l*n+n]
				f := fw.fld[l*n : l*n+n]
				s := fw.sgn[l*n : l*n+n]
				dt := fw.dts[l]
				for i := 0; i < n; i++ {
					y[i] += dt * (-(a0-at)*x[i] + c0*f[i])
					x[i] += dt * a0 * y[i]
					if x[i] > 1 {
						x[i] = 1
						y[i] = 0
					} else if x[i] < -1 {
						x[i] = -1
						y[i] = 0
					}
					// Refresh the dSB sign in the same pass; x is final for
					// this step, so sign(x) here equals the sign SolveWith
					// would materialize at the top of the next step.
					if x[i] >= 0 {
						s[i] = 1
					} else {
						s[i] = -1
					}
				}
			}
		default: // Ballistic
			for l := 0; l < active; l++ {
				x := fw.x[l*n : l*n+n]
				y := fw.y[l*n : l*n+n]
				f := fw.fld[l*n : l*n+n]
				dt := fw.dts[l]
				for i := 0; i < n; i++ {
					y[i] += dt * (-(a0-at)*x[i] + c0*f[i])
					x[i] += dt * a0 * y[i]
					if x[i] > 1 {
						x[i] = 1
						y[i] = 0
					} else if x[i] < -1 {
						x[i] = -1
						y[i] = 0
					}
				}
			}
		}

		it := iter + 1
		if sampleEvery > 0 && it%sampleEvery == 0 {
			sample(it)
		}
		if stopF > 0 && it%stopF == 0 {
			// One batched field product yields every lane's continuous
			// energy for the §3.3.1 windows. Lanes are scanned top-down so
			// a retirement's compaction moves an already-processed lane
			// into the vacated slot, never an unprocessed one.
			ab = active * n
			ising.FieldBatch(p.Coup, fw.x[:ab], fw.fld[:ab], active)
			for l := active - 1; l >= 0; l-- {
				x := fw.x[l*n : l*n+n]
				f := fw.fld[l*n : l*n+n]
				e := 0.0
				for i := 0; i < n; i++ {
					e -= 0.5 * f[i] * x[i]
					e -= p.Bias(i) * x[i]
				}
				fw.windows[l].push(e)
				if it >= minIters && fw.windows[l].full() && fw.windows[l].variance() < params.Stop.Epsilon {
					retire(l, it, metrics.StopConverged, true)
				}
			}
		}
		if ctxEvery > 0 && it%ctxEvery == 0 && active > 0 && ctx.Err() != nil {
			reason := metrics.ReasonFromContext(ctx)
			for active > 0 {
				retire(active-1, it, reason, false)
			}
		}
	}
	// Survivors ran the full budget.
	for active > 0 {
		retire(active-1, steps, metrics.StopMaxIters, false)
	}

	best := -1
	for r := 0; r < replicas; r++ {
		if stats.Stopped[r] == metrics.StopNone {
			continue // never launched; Energies[r] is the +Inf sentinel
		}
		// Strict < keeps the lowest replica index among equal energies,
		// the same tie-break a serial scan uses.
		if best < 0 || stats.Energies[r] < stats.Energies[best] {
			best = r
		}
	}
	stats.BestReplica = best
	for _, stopped := range stats.EarlyStopped {
		if stopped {
			stats.EarlyStops++
		}
	}
	for r := range stats.Diverged {
		if stats.Diverged[r] {
			stats.Diverges++
		}
		if stats.Rescued[r] {
			stats.Rescues++
		}
	}
	if reason := metrics.ReasonFromContext(ctx); reason != metrics.StopNone {
		stats.BatchStopped = reason
	}

	res := Result{
		Spins:        fw.best[best*n : (best+1)*n],
		Energy:       stats.Energies[best],
		Objective:    stats.Energies[best] + p.Offset,
		Iterations:   stats.Iterations[best],
		Stopped:      stats.Stopped[best],
		StoppedEarly: stats.EarlyStopped[best],
		Samples:      fw.samples[best],
		Diverged:     stats.Diverged[best],
		Rescued:      stats.Rescued[best],
		Quantized:    quant != nil,
		BitPacked:    planes != nil,
	}

	wall := time.Since(batchStart)
	batchMet.ObserveRun(wall, stats.BatchStopped)
	// The fused engine is one lock-step worker: busy time equals wall
	// time, so utilization reads 1 rather than diluting across idle
	// worker slots that were never spawned.
	batchMet.WorkerBusy.Observe(wall)
	batchMet.WorkerCapacity.Observe(wall)
	if launch > 1 {
		batchMet.Restarts.Add(int64(launch - 1))
	}
	return res, stats
}
