package sb

import (
	"context"
	"math"
	"testing"
	"time"

	"isinglut/internal/metrics"
)

// TestSolveWithPreCancelledContext: a context cancelled before the solve
// starts must stop the run at the first poll point, still returning a
// valid (if unconverged) rounded state.
func TestSolveWithPreCancelledContext(t *testing.T) {
	p := randomProblem(16, 21)
	params := DefaultParams()
	params.Steps = 100000
	params.SampleEvery = 10
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := SolveWith(ctx, p, params, NewWorkspace(p.N()))
	if res.Stopped != metrics.StopCancelled {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, metrics.StopCancelled)
	}
	if res.Iterations > 2*params.SampleEvery {
		t.Fatalf("ran %d iterations after pre-cancellation (sample period %d)",
			res.Iterations, params.SampleEvery)
	}
	if len(res.Spins) != p.N() {
		t.Fatalf("got %d spins, want %d", len(res.Spins), p.N())
	}
	if got := p.Energy(res.Spins); got != res.Energy {
		t.Fatalf("reported energy %g does not match spins (%g)", res.Energy, got)
	}
}

// TestSolveWithExpiredDeadline distinguishes the deadline reason from
// plain cancellation.
func TestSolveWithExpiredDeadline(t *testing.T) {
	p := randomProblem(16, 22)
	params := DefaultParams()
	params.Steps = 100000
	params.SampleEvery = 10
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res := SolveWith(ctx, p, params, NewWorkspace(p.N()))
	if res.Stopped != metrics.StopDeadline {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, metrics.StopDeadline)
	}
}

// TestSolveWithUncancelledContextCompletes: a live but never-fired
// context must not perturb the run — the result matches the
// context-free solve exactly.
func TestSolveWithUncancelledContextCompletes(t *testing.T) {
	p := randomProblem(20, 23)
	params := DefaultParams()
	params.Steps = 400
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := SolveWith(ctx, p, params, NewWorkspace(p.N()))
	want := Solve(p, params)
	if got.Energy != want.Energy || got.Iterations != want.Iterations {
		t.Fatalf("live-context run (E=%g, it=%d) diverged from plain run (E=%g, it=%d)",
			got.Energy, got.Iterations, want.Energy, want.Iterations)
	}
	if got.Stopped != want.Stopped {
		t.Fatalf("Stopped = %v, want %v", got.Stopped, want.Stopped)
	}
	if got.Stopped.Interrupted() {
		t.Fatalf("uncancelled run reported interruption: %v", got.Stopped)
	}
}

// TestSolveBatchCancelledMidRunReturnsPromptly is the batch cancellation
// contract: cancelling a long batch returns promptly (each in-flight
// replica stops at its next sample point) with the best-so-far winner and
// partial per-replica Stats.
func TestSolveBatchCancelledMidRunReturnsPromptly(t *testing.T) {
	p := randomProblem(48, 24)
	params := DefaultParams()
	params.Steps = 2_000_000 // hours of work if run to completion
	params.SampleEvery = 16
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, stats := SolveBatch(ctx, p, BatchParams{Base: params, Replicas: 8, Workers: 2})
	elapsed := time.Since(start)

	// Generous promptness bound: a replica stops within one 16-iteration
	// sample period of the cancel, far under a second; the full batch
	// budget is ~minutes. Keep slack for loaded CI machines.
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled batch took %v to return", elapsed)
	}
	if stats.BatchStopped != metrics.StopCancelled {
		t.Fatalf("BatchStopped = %v, want %v", stats.BatchStopped, metrics.StopCancelled)
	}
	if stats.BestReplica < 0 {
		t.Fatal("cancelled batch returned no winner")
	}
	if len(res.Spins) != p.N() {
		t.Fatalf("winner has %d spins, want %d", len(res.Spins), p.N())
	}
	if got := p.Energy(res.Spins); got != res.Energy {
		t.Fatalf("winner energy %g does not match its spins (%g)", res.Energy, got)
	}
	if stats.Launched < 1 || stats.Launched > stats.Replicas {
		t.Fatalf("Launched = %d out of range [1,%d]", stats.Launched, stats.Replicas)
	}
	launched := 0
	for r, reason := range stats.Stopped {
		switch reason {
		case metrics.StopNone: // never launched
			if stats.Iterations[r] != 0 {
				t.Fatalf("replica %d never launched but executed %d iterations", r, stats.Iterations[r])
			}
		case metrics.StopCancelled:
			launched++
			if stats.Iterations[r] >= params.Steps {
				t.Fatalf("replica %d reported cancelled after the full budget", r)
			}
		default:
			launched++
		}
	}
	if launched != stats.Launched {
		t.Fatalf("per-replica reasons count %d launched, Stats.Launched = %d", launched, stats.Launched)
	}
	if launched == stats.Replicas {
		t.Log("note: every replica launched before the cancel landed (slow dispatch); promptness still held")
	}
}

// TestSolveBatchUnlaunchedReplicaEnergiesAreInf is the regression test
// for the Stats.Energies contract on a cancelled batch: entries for
// never-launched replicas must be +Inf, not 0 — a zero reads as a valid
// (often winning) energy to any consumer scanning for a minimum without
// cross-checking Stopped. With +Inf, a naive argmin over Energies always
// agrees with BestReplica.
func TestSolveBatchUnlaunchedReplicaEnergiesAreInf(t *testing.T) {
	p := randomProblem(16, 26)
	params := DefaultParams()
	params.Steps = 2000
	params.SampleEvery = 10
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, stats := SolveBatch(ctx, p, BatchParams{Base: params, Replicas: 6, Workers: 2})
	if stats.Launched >= stats.Replicas {
		t.Fatalf("pre-cancelled batch launched all %d replicas; need unlaunched slots", stats.Replicas)
	}
	for r, reason := range stats.Stopped {
		if reason == metrics.StopNone {
			if !math.IsInf(stats.Energies[r], 1) {
				t.Fatalf("unlaunched replica %d has energy %g, want +Inf", r, stats.Energies[r])
			}
			if stats.Iterations[r] != 0 {
				t.Fatalf("unlaunched replica %d reports %d iterations, want 0", r, stats.Iterations[r])
			}
		} else if math.IsInf(stats.Energies[r], 1) {
			t.Fatalf("launched replica %d kept the +Inf sentinel", r)
		}
	}
	// The sentinel makes the naive scan safe: argmin over Energies is the
	// batch winner even when the caller ignores Stopped entirely.
	argmin := -1
	for r, e := range stats.Energies {
		if argmin < 0 || e < stats.Energies[argmin] {
			argmin = r
		}
	}
	if argmin != stats.BestReplica {
		t.Fatalf("argmin over Energies = %d, BestReplica = %d (energies %v)",
			argmin, stats.BestReplica, stats.Energies)
	}
	if stats.Energies[stats.BestReplica] != res.Energy {
		t.Fatalf("winner energy mismatch: stats %g, result %g",
			stats.Energies[stats.BestReplica], res.Energy)
	}
}

// TestSolveBatchPreCancelledStillRunsReplicaZero: even an
// already-cancelled context yields one launched replica and a valid
// best state — a batch never returns nothing.
func TestSolveBatchPreCancelledStillRunsReplicaZero(t *testing.T) {
	p := randomProblem(16, 25)
	params := DefaultParams()
	params.Steps = 100000
	params.SampleEvery = 10
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, stats := SolveBatch(ctx, p, BatchParams{Base: params, Replicas: 6, Workers: 3})
	if stats.Launched != 1 {
		t.Fatalf("Launched = %d, want exactly replica 0", stats.Launched)
	}
	if stats.BestReplica != 0 {
		t.Fatalf("BestReplica = %d, want 0", stats.BestReplica)
	}
	if stats.Stopped[0] != metrics.StopCancelled {
		t.Fatalf("replica 0 Stopped = %v, want %v", stats.Stopped[0], metrics.StopCancelled)
	}
	for r := 1; r < stats.Replicas; r++ {
		if stats.Stopped[r] != metrics.StopNone {
			t.Fatalf("replica %d Stopped = %v, want StopNone (never launched)", r, stats.Stopped[r])
		}
	}
	if len(res.Spins) != p.N() {
		t.Fatalf("got %d spins, want %d", len(res.Spins), p.N())
	}
	if stats.BatchStopped != metrics.StopCancelled {
		t.Fatalf("BatchStopped = %v, want %v", stats.BatchStopped, metrics.StopCancelled)
	}
}
