package sb

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
)

func TestSolveBatchAtLeastSingle(t *testing.T) {
	p := randomProblem(12, 3)
	base := DefaultParams()
	base.Steps = 400
	single := Solve(p, base)
	batch, stats := SolveBatch(context.Background(), p, BatchParams{Base: base, Replicas: 6, Workers: 3})
	if batch.Energy > single.Energy+1e-12 {
		t.Fatalf("batch %g worse than its first replica %g", batch.Energy, single.Energy)
	}
	if math.Abs(p.Energy(batch.Spins)-batch.Energy) > 1e-9 {
		t.Fatal("batch energy does not match spins")
	}
	if stats.Replicas != 6 || len(stats.Energies) != 6 || len(stats.Iterations) != 6 {
		t.Fatalf("stats shape %+v", stats)
	}
	// Replica 0 reuses the single-run seed, so its stats entry must match.
	if stats.Energies[0] != single.Energy {
		t.Fatalf("replica 0 energy %g != single run %g", stats.Energies[0], single.Energy)
	}
	for r, e := range stats.Energies {
		if e < batch.Energy-1e-12 {
			t.Fatalf("replica %d energy %g below reported winner %g", r, e, batch.Energy)
		}
	}
	if stats.Energies[stats.BestReplica] != batch.Energy {
		t.Fatalf("BestReplica %d energy %g != winner %g",
			stats.BestReplica, stats.Energies[stats.BestReplica], batch.Energy)
	}
	if stats.TotalIterations() < 6*400 {
		t.Fatalf("total iterations %d below 6 full runs", stats.TotalIterations())
	}
}

func TestSolveBatchDeterministic(t *testing.T) {
	p := randomProblem(10, 4)
	base := DefaultParams()
	base.Steps = 300
	bp := BatchParams{Base: base, Replicas: 5, Workers: 4}
	a, as := SolveBatch(context.Background(), p, bp)
	b, bs := SolveBatch(context.Background(), p, bp)
	if a.Energy != b.Energy {
		t.Fatal("batch not deterministic")
	}
	// And identical to a serial batch, stats included.
	bp.Workers = 1
	c, cs := SolveBatch(context.Background(), p, bp)
	if a.Energy != c.Energy {
		t.Fatal("parallel batch differs from serial batch")
	}
	if as.BestReplica != cs.BestReplica || as.BestReplica != bs.BestReplica {
		t.Fatalf("winning replica varies: %d/%d/%d", as.BestReplica, bs.BestReplica, cs.BestReplica)
	}
	for r := range as.Energies {
		if as.Energies[r] != cs.Energies[r] || as.Iterations[r] != cs.Iterations[r] {
			t.Fatalf("replica %d stats differ between parallel and serial", r)
		}
	}
	for i := range a.Spins {
		if a.Spins[i] != c.Spins[i] {
			t.Fatal("parallel batch spins differ from serial batch")
		}
	}
}

func TestSolveBatchDefaults(t *testing.T) {
	p := randomProblem(8, 5)
	base := DefaultParams()
	base.Steps = 200
	res, stats := SolveBatch(context.Background(), p, BatchParams{Base: base}) // default replicas/workers
	if len(res.Spins) != 8 {
		t.Fatal("no result from default batch")
	}
	if stats.Replicas != 4 {
		t.Fatalf("default replicas %d, want 4", stats.Replicas)
	}
}

func TestSolveBatchSharedHookSerializes(t *testing.T) {
	// With a shared OnSample hook and no factory, the batch must fall back
	// to serial execution; the hook counting below would race otherwise
	// (run under -race to enforce).
	p := randomProblem(8, 6)
	base := DefaultParams()
	base.Steps = 100
	base.SampleEvery = 10
	calls := 0 // deliberately not atomic: safe only if serialized
	base.OnSample = func(int, []float64, []float64) { calls++ }
	_, _ = SolveBatch(context.Background(), p, BatchParams{Base: base, Replicas: 4, Workers: 4})
	if calls == 0 {
		t.Fatal("hook never ran")
	}
}

func TestSolveBatchHookFactoryParallel(t *testing.T) {
	p := randomProblem(8, 7)
	base := DefaultParams()
	base.Steps = 100
	base.SampleEvery = 10
	var calls int64
	bp := BatchParams{
		Base:     base,
		Replicas: 4,
		Workers:  4,
		MakeOnSample: func(int) func(int, []float64, []float64) {
			return func(int, []float64, []float64) { atomic.AddInt64(&calls, 1) }
		},
	}
	_, _ = SolveBatch(context.Background(), p, bp)
	if atomic.LoadInt64(&calls) == 0 {
		t.Fatal("factory hooks never ran")
	}
}
