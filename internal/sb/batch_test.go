package sb

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestSolveBatchAtLeastSingle(t *testing.T) {
	p := randomProblem(12, 3)
	base := DefaultParams()
	base.Steps = 400
	single := Solve(p, base)
	batch := SolveBatch(p, BatchParams{Base: base, Replicas: 6, Workers: 3})
	if batch.Energy > single.Energy+1e-12 {
		t.Fatalf("batch %g worse than its first replica %g", batch.Energy, single.Energy)
	}
	if math.Abs(p.Energy(batch.Spins)-batch.Energy) > 1e-9 {
		t.Fatal("batch energy does not match spins")
	}
}

func TestSolveBatchDeterministic(t *testing.T) {
	p := randomProblem(10, 4)
	base := DefaultParams()
	base.Steps = 300
	bp := BatchParams{Base: base, Replicas: 5, Workers: 4}
	a := SolveBatch(p, bp)
	b := SolveBatch(p, bp)
	if a.Energy != b.Energy {
		t.Fatal("batch not deterministic")
	}
	// And identical to a serial batch.
	bp.Workers = 1
	c := SolveBatch(p, bp)
	if a.Energy != c.Energy {
		t.Fatal("parallel batch differs from serial batch")
	}
}

func TestSolveBatchDefaults(t *testing.T) {
	p := randomProblem(8, 5)
	base := DefaultParams()
	base.Steps = 200
	res := SolveBatch(p, BatchParams{Base: base}) // default replicas/workers
	if len(res.Spins) != 8 {
		t.Fatal("no result from default batch")
	}
}

func TestSolveBatchSharedHookSerializes(t *testing.T) {
	// With a shared OnSample hook and no factory, the batch must fall back
	// to serial execution; the hook counting below would race otherwise
	// (run under -race to enforce).
	p := randomProblem(8, 6)
	base := DefaultParams()
	base.Steps = 100
	base.SampleEvery = 10
	calls := 0 // deliberately not atomic: safe only if serialized
	base.OnSample = func(int, []float64, []float64) { calls++ }
	SolveBatch(p, BatchParams{Base: base, Replicas: 4, Workers: 4})
	if calls == 0 {
		t.Fatal("hook never ran")
	}
}

func TestSolveBatchHookFactoryParallel(t *testing.T) {
	p := randomProblem(8, 7)
	base := DefaultParams()
	base.Steps = 100
	base.SampleEvery = 10
	var calls int64
	bp := BatchParams{
		Base:     base,
		Replicas: 4,
		Workers:  4,
		MakeOnSample: func(int) func(int, []float64, []float64) {
			return func(int, []float64, []float64) { atomic.AddInt64(&calls, 1) }
		},
	}
	SolveBatch(p, bp)
	if atomic.LoadInt64(&calls) == 0 {
		t.Fatal("factory hooks never ran")
	}
}
