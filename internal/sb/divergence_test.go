package sb

import (
	"context"
	"math"
	"testing"

	"isinglut/internal/fault"
	"isinglut/internal/metrics"
)

// divergenceParams is the shared configuration of the divergence tests:
// mid-run sampling is on (SampleEvery) so the guard sees the poisoned
// energy well before the final evaluation, in both engines at the same
// cadence.
func divergenceParams(v Variant) Params {
	p := DefaultParamsFor(v)
	p.Steps = 240
	p.SampleEvery = 20
	p.Seed = 100
	return p
}

// assertBatchesIdentical pins the bit-identity contract between the
// goroutine and fused engines under the same injected fault.
func assertBatchesIdentical(t *testing.T, off, on Result, offs, ons Stats) {
	t.Helper()
	if math.Float64bits(off.Energy) != math.Float64bits(on.Energy) {
		t.Fatalf("winner energy differs across engines: %g vs %g", off.Energy, on.Energy)
	}
	if off.Iterations != on.Iterations || off.Stopped != on.Stopped ||
		off.Diverged != on.Diverged || off.Rescued != on.Rescued {
		t.Fatalf("winner shape differs: %+v vs %+v",
			[]any{off.Iterations, off.Stopped, off.Diverged, off.Rescued},
			[]any{on.Iterations, on.Stopped, on.Diverged, on.Rescued})
	}
	for i := range off.Spins {
		if off.Spins[i] != on.Spins[i] {
			t.Fatalf("winner spin %d differs across engines", i)
		}
	}
	if offs.BestReplica != ons.BestReplica {
		t.Fatalf("BestReplica differs: %d vs %d", offs.BestReplica, ons.BestReplica)
	}
	for r := 0; r < offs.Replicas; r++ {
		if math.Float64bits(offs.Energies[r]) != math.Float64bits(ons.Energies[r]) {
			t.Fatalf("replica %d energy differs: %g vs %g", r, offs.Energies[r], ons.Energies[r])
		}
		if offs.Iterations[r] != ons.Iterations[r] {
			t.Fatalf("replica %d iterations differ: %d vs %d", r, offs.Iterations[r], ons.Iterations[r])
		}
		if offs.Stopped[r] != ons.Stopped[r] {
			t.Fatalf("replica %d stop reason differs: %v vs %v", r, offs.Stopped[r], ons.Stopped[r])
		}
		if offs.Diverged[r] != ons.Diverged[r] || offs.Rescued[r] != ons.Rescued[r] {
			t.Fatalf("replica %d diverged/rescued flags differ", r)
		}
	}
}

// TestDivergenceQuarantineBothEngines drives the table of the issue's
// divergence contract: for every SB variant, inject a NaN energy into one
// replica (keyed by its seed, so both engines poison the same trajectory
// regardless of scheduling) and assert quarantine — Stats.Diverged, +Inf
// energy, StopDiverged — winner exclusion, and bit-identical behaviour of
// the goroutine and fused engines.
func TestDivergenceQuarantineBothEngines(t *testing.T) {
	const replicas = 4
	const victim = 1
	for _, v := range []Variant{Ballistic, Adiabatic, Discrete} {
		t.Run(v.String(), func(t *testing.T) {
			p := randomProblem(24, 7)
			base := divergenceParams(v)
			key := base.Seed + int64(victim)

			fault.MustArm("sb.diverge", fault.Scenario{Keys: []int64{key}, Times: -1})
			defer fault.DisarmAll()
			resOff, statsOff := SolveBatch(context.Background(), p, BatchParams{
				Base: base, Replicas: replicas, Fused: FuseOff,
			})
			fault.MustArm("sb.diverge", fault.Scenario{Keys: []int64{key}, Times: -1})
			resOn, statsOn := SolveBatch(context.Background(), p, BatchParams{
				Base: base, Replicas: replicas, Fused: FuseOn,
			})

			for _, st := range []Stats{statsOff, statsOn} {
				if !st.Diverged[victim] || st.Diverges != 1 {
					t.Fatalf("Diverged = %v (count %d), want replica %d quarantined",
						st.Diverged, st.Diverges, victim)
				}
				if !math.IsInf(st.Energies[victim], 1) {
					t.Fatalf("diverged replica energy %g, want +Inf", st.Energies[victim])
				}
				if st.Stopped[victim] != metrics.StopDiverged {
					t.Fatalf("diverged replica stop %v, want StopDiverged", st.Stopped[victim])
				}
				if st.BestReplica == victim {
					t.Fatal("diverged replica won the batch")
				}
			}
			for _, res := range []Result{resOff, resOn} {
				if res.Diverged {
					t.Fatal("winner carries the Diverged flag with finite replicas available")
				}
				if !isFinite(res.Energy) {
					t.Fatalf("winner energy %g not finite", res.Energy)
				}
			}
			assertBatchesIdentical(t, resOff, resOn, statsOff, statsOn)
		})
	}
}

// TestAllReplicasDiverged injects divergence into every replica: the
// batch must report +Inf energies and the Diverged flag on the winner —
// never a garbage finite winner — and the spins must still be a valid ±1
// state in both engines.
func TestAllReplicasDiverged(t *testing.T) {
	const replicas = 3
	p := randomProblem(16, 3)
	base := divergenceParams(Ballistic)
	keys := make([]int64, replicas)
	for r := range keys {
		keys[r] = base.Seed + int64(r)
	}

	fault.MustArm("sb.diverge", fault.Scenario{Keys: keys, Times: -1})
	defer fault.DisarmAll()
	resOff, statsOff := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOff,
	})
	fault.MustArm("sb.diverge", fault.Scenario{Keys: keys, Times: -1})
	resOn, statsOn := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOn,
	})

	for _, st := range []Stats{statsOff, statsOn} {
		if st.Diverges != replicas {
			t.Fatalf("Diverges = %d, want all %d", st.Diverges, replicas)
		}
		for r, e := range st.Energies {
			if !math.IsInf(e, 1) {
				t.Fatalf("replica %d energy %g, want +Inf", r, e)
			}
			if st.Stopped[r] != metrics.StopDiverged {
				t.Fatalf("replica %d stop %v, want StopDiverged", r, st.Stopped[r])
			}
		}
	}
	for _, res := range []Result{resOff, resOn} {
		if !res.Diverged {
			t.Fatal("all-diverged batch winner must carry the Diverged flag")
		}
		if !math.IsInf(res.Energy, 1) {
			t.Fatalf("all-diverged batch energy %g, want +Inf", res.Energy)
		}
		if len(res.Spins) != p.N() {
			t.Fatalf("spins length %d, want %d", len(res.Spins), p.N())
		}
		for i, s := range res.Spins {
			if s != 1 && s != -1 {
				t.Fatalf("spin %d = %d, want ±1", i, s)
			}
		}
	}
	assertBatchesIdentical(t, resOff, resOn, statsOff, statsOn)
}

// TestDivergenceRescue arms a one-shot poison against a single replica
// with RescueDiverged on: the trajectory must recover (re-seeded, damped
// dt), finish with a finite energy, carry the Rescued flag — and do so
// bit-identically in both engines.
func TestDivergenceRescue(t *testing.T) {
	const replicas = 3
	const victim = 2
	p := randomProblem(20, 11)
	base := divergenceParams(Ballistic)
	base.RescueDiverged = true
	key := base.Seed + int64(victim)

	fault.MustArm("sb.diverge", fault.Scenario{Keys: []int64{key}}) // Times 0: fire once
	defer fault.DisarmAll()
	resOff, statsOff := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOff,
	})
	fault.MustArm("sb.diverge", fault.Scenario{Keys: []int64{key}})
	resOn, statsOn := SolveBatch(context.Background(), p, BatchParams{
		Base: base, Replicas: replicas, Fused: FuseOn,
	})

	for _, st := range []Stats{statsOff, statsOn} {
		if !st.Rescued[victim] || st.Rescues != 1 {
			t.Fatalf("Rescued = %v (count %d), want replica %d rescued", st.Rescued, st.Rescues, victim)
		}
		if st.Diverged[victim] {
			t.Fatal("rescued replica must not be quarantined")
		}
		if !isFinite(st.Energies[victim]) {
			t.Fatalf("rescued replica energy %g, want finite", st.Energies[victim])
		}
	}
	assertBatchesIdentical(t, resOff, resOn, statsOff, statsOn)
}

// TestDivergenceRescueSecondOverflowQuarantines pins the "one-shot" in
// the rescue contract: a trajectory that diverges again after its rescue
// is quarantined like any other.
func TestDivergenceRescueSecondOverflowQuarantines(t *testing.T) {
	p := randomProblem(16, 5)
	params := divergenceParams(Ballistic)
	params.RescueDiverged = true

	fault.MustArm("sb.diverge", fault.Scenario{Keys: []int64{params.Seed}, Times: 2})
	defer fault.DisarmAll()
	res := Solve(p, params)
	if !res.Rescued {
		t.Fatal("first overflow should have been rescued")
	}
	if !res.Diverged || !math.IsInf(res.Energy, 1) || res.Stopped != metrics.StopDiverged {
		t.Fatalf("second overflow not quarantined: %+v", res)
	}
}

// TestScalarStepPoisonDiverges drives the unkeyed sb.step failpoint: a
// NaN escaping the field kernel mid-iteration must surface as a
// quarantined run with valid ±1 spins, not as a garbage winner.
func TestScalarStepPoisonDiverges(t *testing.T) {
	p := randomProblem(12, 9)
	params := divergenceParams(Ballistic)

	fault.MustArm("sb.step", fault.Scenario{After: 5, Times: -1})
	defer fault.DisarmAll()
	res := Solve(p, params)
	if !res.Diverged || !math.IsInf(res.Energy, 1) {
		t.Fatalf("step poison not detected: diverged=%v energy=%g", res.Diverged, res.Energy)
	}
	for i, s := range res.Spins {
		if s != 1 && s != -1 {
			t.Fatalf("spin %d = %d, want ±1", i, s)
		}
	}
}
