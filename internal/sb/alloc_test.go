package sb

import (
	"context"
	"testing"
)

// TestSolveWithZeroAllocs pins the workspace contract: once the workspace
// has warmed up to the problem size, SolveWith performs zero heap
// allocations per run — across all three variants, with the dynamic stop
// criterion (whose ring buffer lives in the workspace) engaged, and with
// the metrics instrumentation (atomic counters and histogram observations
// per run) active.
func TestSolveWithZeroAllocs(t *testing.T) {
	p := randomProblem(24, 9)
	for _, v := range []Variant{Ballistic, Adiabatic, Discrete} {
		params := DefaultParamsFor(v)
		params.Steps = 200
		params.Stop = &StopCriteria{F: 10, S: 5, Epsilon: 1e-12}
		params.Seed = 3
		ws := NewWorkspace(p.N())
		SolveWith(context.Background(), p, params, ws) // warm up
		allocs := testing.AllocsPerRun(20, func() {
			SolveWith(context.Background(), p, params, ws)
		})
		if allocs != 0 {
			t.Errorf("%v: SolveWith allocates %.1f times per run, want 0", v, allocs)
		}
	}
}

// TestSolveWithZeroAllocsAcrossSeeds re-seeds between runs (the batch
// solver's access pattern: one workspace, many replica seeds) — reseeding
// the workspace RNG must not allocate either.
func TestSolveWithZeroAllocsAcrossSeeds(t *testing.T) {
	p := randomProblem(16, 11)
	params := DefaultParams()
	params.Steps = 150
	ws := NewWorkspace(p.N())
	SolveWith(context.Background(), p, params, ws) // warm up
	seed := int64(0)
	allocs := testing.AllocsPerRun(20, func() {
		params.Seed = seed
		seed++
		SolveWith(context.Background(), p, params, ws)
	})
	if allocs != 0 {
		t.Errorf("SolveWith allocates %.1f times per run across seeds, want 0", allocs)
	}
}

// TestSolveWithZeroAllocsCancellableContext pins the cancellation layer's
// cost: polling a live cancellable context at the sample cadence must not
// allocate on the hot path either (the context itself is built outside
// the measured region).
func TestSolveWithZeroAllocsCancellableContext(t *testing.T) {
	p := randomProblem(16, 13)
	params := DefaultParams()
	params.Steps = 200
	params.SampleEvery = 10
	ws := NewWorkspace(p.N())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	SolveWith(ctx, p, params, ws) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		SolveWith(ctx, p, params, ws)
	})
	if allocs != 0 {
		t.Errorf("SolveWith with cancellable ctx allocates %.1f times per run, want 0", allocs)
	}
}

// TestWorkspaceGrowsAndShrinks: one workspace must serve problems of
// different sizes (the core-COP pool reuses workspaces across COP shapes).
func TestWorkspaceGrowsAndShrinks(t *testing.T) {
	ws := new(Workspace)
	params := DefaultParams()
	params.Steps = 100
	for _, n := range []int{6, 12, 4} {
		p := randomProblem(n, int64(n))
		res := SolveWith(context.Background(), p, params, ws)
		if len(res.Spins) != n {
			t.Fatalf("n=%d: %d spins", n, len(res.Spins))
		}
		want := Solve(p, params)
		if res.Energy != want.Energy {
			t.Fatalf("n=%d: reused workspace energy %g != fresh %g", n, res.Energy, want.Energy)
		}
	}
}
