// Package boolmatrix builds the Boolean matrix of a single-output Boolean
// function under an input partition.
//
// Following the paper, the matrix of component g_k under w = {A, B} has
// r = 2^|A| rows (indexed by the free-set assignment) and c = 2^|B|
// columns (indexed by the bound-set assignment); entry (i, j) holds
// O_kij = g_k at the corresponding global input pattern, together with the
// occurrence probability p_kij of that pattern. Both decomposition
// theorems (row-based and column-based) are statements about this matrix.
package boolmatrix

import (
	"fmt"

	"isinglut/internal/bitvec"
	"isinglut/internal/partition"
	"isinglut/internal/prob"
)

// Matrix is the Boolean matrix of one component function under a
// partition. Values are stored row-major, packed one bit per entry, with
// probabilities as float64 per entry.
type Matrix struct {
	part *partition.Partition
	r, c int
	vals *bitvec.Vector // r*c bits, entry (i,j) at index i*c+j
	p    []float64      // r*c probabilities
}

// Build constructs the matrix of the component whose packed truth table is
// tt (length 2^n) under part, weighting entries by dist. dist may be nil,
// which means the uniform distribution.
func Build(tt *bitvec.Vector, part *partition.Partition, dist prob.Distribution) *Matrix {
	n := part.NumVars()
	if tt.Len() != 1<<uint(n) {
		panic(fmt.Sprintf("boolmatrix: truth table has %d bits, partition wants %d", tt.Len(), 1<<uint(n)))
	}
	if dist == nil {
		dist = prob.NewUniform(n)
	} else if dist.NumInputs() != n {
		panic(fmt.Sprintf("boolmatrix: distribution over %d inputs, partition over %d", dist.NumInputs(), n))
	}
	r, c := part.Rows(), part.Cols()
	m := &Matrix{
		part: part,
		r:    r,
		c:    c,
		vals: bitvec.New(r * c),
		p:    make([]float64, r*c),
	}
	for i := 0; i < r; i++ {
		base := i * c
		for j := 0; j < c; j++ {
			if !part.Valid(i, j) {
				continue // unreachable cell: value 0, probability 0
			}
			g := part.Global(i, j)
			if tt.Get(int(g)) {
				m.vals.Set(base+j, true)
			}
			m.p[base+j] = dist.P(g)
		}
	}
	return m
}

// Partition returns the partition the matrix was built under.
func (m *Matrix) Partition() *partition.Partition { return m.part }

// Rows returns r = 2^|A|.
func (m *Matrix) Rows() int { return m.r }

// Cols returns c = 2^|B|.
func (m *Matrix) Cols() int { return m.c }

// Value returns O at cell (i, j) as 0 or 1.
func (m *Matrix) Value(i, j int) int {
	return m.vals.Bit(i*m.c + j)
}

// Prob returns the occurrence probability of cell (i, j).
func (m *Matrix) Prob(i, j int) float64 {
	return m.p[i*m.c+j]
}

// Global returns the global input pattern of cell (i, j).
func (m *Matrix) Global(i, j int) uint64 {
	return m.part.Global(i, j)
}

// Valid reports whether cell (i, j) corresponds to an input pattern
// (always true under a disjoint partition).
func (m *Matrix) Valid(i, j int) bool {
	return m.part.Valid(i, j)
}

// Row returns row i as a c-bit vector (a fresh copy).
func (m *Matrix) Row(i int) *bitvec.Vector {
	row := bitvec.New(m.c)
	base := i * m.c
	for j := 0; j < m.c; j++ {
		if m.vals.Get(base + j) {
			row.Set(j, true)
		}
	}
	return row
}

// Col returns column j as an r-bit vector (a fresh copy).
func (m *Matrix) Col(j int) *bitvec.Vector {
	col := bitvec.New(m.r)
	for i := 0; i < m.r; i++ {
		if m.vals.Get(i*m.c + j) {
			col.Set(i, true)
		}
	}
	return col
}

// RowProbMass returns the total probability of row i.
func (m *Matrix) RowProbMass(i int) float64 {
	sum := 0.0
	base := i * m.c
	for j := 0; j < m.c; j++ {
		sum += m.p[base+j]
	}
	return sum
}

// ColProbMass returns the total probability of column j.
func (m *Matrix) ColProbMass(j int) float64 {
	sum := 0.0
	for i := 0; i < m.r; i++ {
		sum += m.p[i*m.c+j]
	}
	return sum
}

// String renders small matrices for debugging (panics above 16x64).
func (m *Matrix) String() string {
	if m.r > 16 || m.c > 64 {
		panic("boolmatrix: String on large matrix")
	}
	s := ""
	for i := 0; i < m.r; i++ {
		for j := 0; j < m.c; j++ {
			s += fmt.Sprintf("%d", m.Value(i, j))
		}
		s += "\n"
	}
	return s
}
