package boolmatrix

import (
	"math"
	"math/rand"
	"testing"

	"isinglut/internal/partition"
	"isinglut/internal/prob"
	"isinglut/internal/truthtable"
)

func buildRandom(t *testing.T, n int, maskA uint64, seed int64) (*Matrix, *truthtable.Table, *partition.Partition) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tt := truthtable.Random(n, 1, rng)
	part := partition.MustNew(n, maskA)
	return Build(tt.Component(0), part, nil), tt, part
}

func TestValuesMatchTruthTable(t *testing.T) {
	m, tt, part := buildRandom(t, 6, 0b001101, 1)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			g := part.Global(i, j)
			if m.Value(i, j) != tt.Bit(0, g) {
				t.Fatalf("Value(%d,%d) != truth table at %d", i, j, g)
			}
			if m.Global(i, j) != g {
				t.Fatalf("Global mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestUniformProbabilities(t *testing.T) {
	m, _, _ := buildRandom(t, 5, 0b00110, 2)
	want := 1.0 / 32
	total := 0.0
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.Prob(i, j) != want {
				t.Fatalf("Prob(%d,%d) = %g", i, j, m.Prob(i, j))
			}
			total += m.Prob(i, j)
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("total probability %g", total)
	}
}

func TestWeightedProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tt := truthtable.Random(4, 1, rng)
	part := partition.MustNew(4, 0b0011)
	dist := prob.RandomWeighted(4, rng)
	m := Build(tt.Component(0), part, dist)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.Prob(i, j) != dist.P(part.Global(i, j)) {
				t.Fatalf("weighted Prob mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestRowColViews(t *testing.T) {
	m, _, _ := buildRandom(t, 5, 0b00011, 4)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j := 0; j < m.Cols(); j++ {
			if row.Bit(j) != m.Value(i, j) {
				t.Fatalf("Row(%d) bit %d mismatch", i, j)
			}
		}
	}
	for j := 0; j < m.Cols(); j++ {
		col := m.Col(j)
		for i := 0; i < m.Rows(); i++ {
			if col.Bit(i) != m.Value(i, j) {
				t.Fatalf("Col(%d) bit %d mismatch", j, i)
			}
		}
	}
}

func TestMassAccounting(t *testing.T) {
	m, _, _ := buildRandom(t, 6, 0b000111, 5)
	rowTotal, colTotal := 0.0, 0.0
	for i := 0; i < m.Rows(); i++ {
		rowTotal += m.RowProbMass(i)
	}
	for j := 0; j < m.Cols(); j++ {
		colTotal += m.ColProbMass(j)
	}
	if math.Abs(rowTotal-1) > 1e-12 || math.Abs(colTotal-1) > 1e-12 {
		t.Fatalf("mass totals row=%g col=%g", rowTotal, colTotal)
	}
}

func TestBuildPanicsOnMismatch(t *testing.T) {
	tt := truthtable.New(5, 1)
	part := partition.MustNew(4, 0b0011)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	Build(tt.Component(0), part, nil)
}

func TestBuildPanicsOnDistMismatch(t *testing.T) {
	tt := truthtable.New(4, 1)
	part := partition.MustNew(4, 0b0011)
	defer func() {
		if recover() == nil {
			t.Fatal("distribution mismatch did not panic")
		}
	}()
	Build(tt.Component(0), part, prob.NewUniform(5))
}

func TestStringSmall(t *testing.T) {
	tt := truthtable.FromFunc(2, 1, func(x uint64) uint64 { return x & 1 })
	part := partition.MustNew(2, 0b01)
	m := Build(tt.Component(0), part, nil)
	// Rows indexed by x1 (free), cols by x2: row 0 = x1=0 -> 0, row 1 -> 1.
	if got := m.String(); got != "00\n11\n" {
		t.Errorf("String = %q", got)
	}
}

func TestOverlapMatrixProbabilities(t *testing.T) {
	// Non-disjoint partition: unreachable cells carry zero probability and
	// the total mass still sums to 1 over reachable cells.
	rng := rand.New(rand.NewSource(9))
	tt := truthtable.Random(5, 1, rng)
	part, err := partition.NewOverlap(5, 0b00111, 0b11100) // x3 shared
	if err != nil {
		t.Fatal(err)
	}
	m := Build(tt.Component(0), part, nil)
	total := 0.0
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if !m.Valid(i, j) {
				if m.Prob(i, j) != 0 {
					t.Fatalf("invalid cell (%d,%d) has probability %g", i, j, m.Prob(i, j))
				}
				if m.Value(i, j) != 0 {
					t.Fatalf("invalid cell (%d,%d) has value %d", i, j, m.Value(i, j))
				}
				continue
			}
			if m.Value(i, j) != tt.Bit(0, part.Global(i, j)) {
				t.Fatalf("valid cell (%d,%d) value mismatch", i, j)
			}
			total += m.Prob(i, j)
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("reachable mass %g", total)
	}
}
