package partition

import (
	"strings"
	"testing"
)

// TestNewRejectsOversizedN is the regression test for the Rows()/Cols()
// overflow hazard: 1 << |A| is computed in int arithmetic, so variable
// counts beyond MaxVars must be rejected at construction, never reach
// the shift. n=64 is the worst case — uint64(1)<<64-1 would wrap the
// full mask to 0 and accept any maskA.
func TestNewRejectsOversizedN(t *testing.T) {
	for _, n := range []int{MaxVars + 1, 40, 63, 64, 65, 1 << 20} {
		if _, err := New(n, 1); err == nil {
			t.Errorf("New(%d, 1) accepted, want variable-count error", n)
		} else if !strings.Contains(err.Error(), "unsupported variable count") {
			t.Errorf("New(%d, 1) error %q, want unsupported-variable-count", n, err)
		}
	}
	for _, n := range []int{0, -1} {
		if _, err := New(n, 1); err == nil {
			t.Errorf("New(%d, 1) accepted", n)
		}
	}
	// The boundary itself must still work (with sides balanced under
	// MaxSide), and its matrix dimensions must be positive ints — the
	// overflow the cap exists to prevent.
	p, err := New(MaxVars, uint64(1)<<(MaxVars/2)-1)
	if err != nil {
		t.Fatalf("New(MaxVars, balanced): %v", err)
	}
	if p.Rows() <= 0 || p.Cols() <= 0 {
		t.Fatalf("Rows=%d Cols=%d at n=MaxVars, want positive", p.Rows(), p.Cols())
	}
}

// TestNewOverlapRejectsOversizedSide: a side beyond MaxSide must fail
// before scatterTable runs — at |A|=27 the table alone would be 1 GiB,
// and larger sides push 1 << len(pos) toward overflow.
func TestNewOverlapRejectsOversizedSide(t *testing.T) {
	const n = MaxVars
	maskA := uint64(1)<<(MaxSide+1) - 1 // |A| = 27
	full := uint64(1)<<n - 1
	maskB := full &^ maskA
	if _, err := NewOverlap(n, maskA, maskB); err == nil {
		t.Fatal("NewOverlap with |A|=27 accepted, want side-size error")
	} else if !strings.Contains(err.Error(), "too large") {
		t.Fatalf("error %q, want side-size rejection", err)
	}
	// Mirror case: oversized bound set.
	if _, err := NewOverlap(n, full&^maskA, maskA); err == nil {
		t.Fatal("NewOverlap with |B|=27 accepted, want side-size error")
	}
}

// TestFromSetsRejectsOversized: the index-set constructor funnels through
// the same guards.
func TestFromSetsRejectsOversized(t *testing.T) {
	big := make([]int, 1)
	if _, err := FromSets(64, big); err == nil {
		t.Fatal("FromSets(64, ...) accepted, want variable-count error")
	}
	if _, err := FromSets(40, []int{0, 1, 2}); err == nil {
		t.Fatal("FromSets(40, ...) accepted, want variable-count error")
	}
	// In-range misuse still reports the index errors, not the size cap.
	if _, err := FromSets(8, []int{9}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := FromSets(8, []int{1, 1}); err == nil {
		t.Fatal("duplicate index accepted")
	}
}
