package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBasics(t *testing.T) {
	p, err := New(4, 0b0011)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars() != 4 || p.FreeSize() != 2 || p.BoundSize() != 2 {
		t.Fatalf("sizes: n=%d |A|=%d |B|=%d", p.NumVars(), p.FreeSize(), p.BoundSize())
	}
	if p.Rows() != 4 || p.Cols() != 4 {
		t.Fatalf("dims %dx%d", p.Rows(), p.Cols())
	}
	if got := p.String(); got != "{A={x1,x2}, B={x3,x4}}" {
		t.Errorf("String = %s", got)
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		n    int
		mask uint64
	}{
		{0, 1}, {31, 1}, {4, 0}, {4, 0b1111}, {4, 0b10000},
	}
	for _, c := range cases {
		if _, err := New(c.n, c.mask); err == nil {
			t.Errorf("New(%d,%#x) accepted", c.n, c.mask)
		}
	}
}

func TestFromSets(t *testing.T) {
	p, err := FromSets(5, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaskA() != 0b10101 {
		t.Errorf("mask = %#b", p.MaskA())
	}
	if _, err := FromSets(5, []int{0, 0}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := FromSets(5, []int{5}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestRowColGlobalBijection(t *testing.T) {
	p := MustNew(6, 0b010110)
	seen := make(map[uint64]bool)
	for i := 0; i < p.Rows(); i++ {
		for j := 0; j < p.Cols(); j++ {
			g := p.Global(i, j)
			if seen[g] {
				t.Fatalf("Global(%d,%d) = %d duplicated", i, j, g)
			}
			seen[g] = true
			if p.RowOf(g) != i || p.ColOf(g) != j {
				t.Fatalf("inverse mismatch at (%d,%d): got (%d,%d)", i, j, p.RowOf(g), p.ColOf(g))
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d patterns, want 64", len(seen))
	}
}

// Property: the (RowOf, ColOf) pair is a bijection for random partitions.
func TestBijectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		free := 1 + rng.Intn(n-1)
		p := Random(n, free, rng)
		for x := uint64(0); x < uint64(1)<<uint(n); x++ {
			if p.Global(p.RowOf(x), p.ColOf(x)) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExample1Partition(t *testing.T) {
	// Paper Example 1: A = {x1, x2}, B = {x3, x4}. Row index comes from
	// (x1, x2) with x1 the low bit.
	p := MustNew(4, 0b0011)
	// Global pattern x1=1,x2=0,x3=1,x4=1 -> 0b1101 = 13.
	if r := p.RowOf(0b1101); r != 0b01 {
		t.Errorf("RowOf = %d", r)
	}
	if c := p.ColOf(0b1101); c != 0b11 {
		t.Errorf("ColOf = %d", c)
	}
}

func TestFreeBoundVars(t *testing.T) {
	p := MustNew(5, 0b01010)
	a := p.FreeVars()
	b := p.BoundVars()
	if len(a) != 2 || a[0] != 1 || a[1] != 3 {
		t.Errorf("FreeVars = %v", a)
	}
	if len(b) != 3 || b[0] != 0 || b[1] != 2 || b[2] != 4 {
		t.Errorf("BoundVars = %v", b)
	}
	// Returned slices are copies.
	a[0] = 99
	if p.FreeVars()[0] == 99 {
		t.Error("FreeVars returns live slice")
	}
}

func TestRandomHasRequestedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := Random(9, 4, rng)
		if p.FreeSize() != 4 || p.BoundSize() != 5 {
			t.Fatalf("sizes %d/%d", p.FreeSize(), p.BoundSize())
		}
	}
}

func TestRandomPanicsOnBadFreeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, free := range []int{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Random(9,%d) did not panic", free)
				}
			}()
			Random(9, free, rng)
		}()
	}
}

func TestRandomDistinctNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := RandomDistinct(8, 3, 20, rng)
	if len(ps) != 20 {
		t.Fatalf("got %d partitions", len(ps))
	}
	seen := map[uint64]bool{}
	for _, p := range ps {
		if seen[p.MaskA()] {
			t.Fatalf("duplicate mask %#x", p.MaskA())
		}
		seen[p.MaskA()] = true
	}
}

func TestRandomDistinctExhaustsSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// C(4,2) = 6 < 100: all distinct partitions must come back.
	ps := RandomDistinct(4, 2, 100, rng)
	if len(ps) != 6 {
		t.Fatalf("got %d partitions, want 6", len(ps))
	}
}

func TestEnumerateCountsMatchBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{4, 2, 6}, {5, 2, 10}, {6, 3, 20}, {9, 4, 126},
	}
	for _, c := range cases {
		got := len(Enumerate(c.n, c.k))
		if got != c.want {
			t.Errorf("Enumerate(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestEnumerateAllHaveSize(t *testing.T) {
	for _, p := range Enumerate(6, 2) {
		if p.FreeSize() != 2 {
			t.Fatalf("partition %v has |A| = %d", p, p.FreeSize())
		}
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(4, 0b0011)
	b := MustNew(4, 0b0011)
	c := MustNew(4, 0b0101)
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal misbehaves")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(9, 4, rand.New(rand.NewSource(99)))
	b := Random(9, 4, rand.New(rand.NewSource(99)))
	if !a.Equal(b) {
		t.Error("same seed produced different partitions")
	}
}
