package partition

import (
	"math/rand"
	"testing"
)

func TestNewOverlapBasics(t *testing.T) {
	// 4 vars, A = {x1,x2,x3}, B = {x3,x4}: x3 shared.
	p, err := NewOverlap(4, 0b0111, 0b1100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Disjoint() {
		t.Fatal("overlapping partition reported disjoint")
	}
	if p.Overlap() != 1 {
		t.Fatalf("Overlap = %d", p.Overlap())
	}
	if p.FreeSize() != 3 || p.BoundSize() != 2 {
		t.Fatalf("sizes %d/%d", p.FreeSize(), p.BoundSize())
	}
	if p.Rows() != 8 || p.Cols() != 4 {
		t.Fatalf("dims %dx%d", p.Rows(), p.Cols())
	}
}

func TestNewOverlapErrors(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0b0011, 0b0100},  // does not cover x4
		{0, 0b1111},       // empty A
		{0b1111, 0},       // empty B
		{0b10000, 0b1111}, // A out of range
	}
	for i, c := range cases {
		if _, err := NewOverlap(4, c.a, c.b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDisjointThroughNewIsDisjoint(t *testing.T) {
	p := MustNew(5, 0b00011)
	if !p.Disjoint() || p.Overlap() != 0 {
		t.Fatal("disjoint partition misclassified")
	}
	for i := 0; i < p.Rows(); i++ {
		for j := 0; j < p.Cols(); j++ {
			if !p.Valid(i, j) {
				t.Fatal("disjoint partition has invalid cells")
			}
		}
	}
}

// TestOverlapCellBijection: the map x -> (RowOf, ColOf) is injective, its
// image is exactly the valid cells, and Global inverts it.
func TestOverlapCellBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		free := 1 + rng.Intn(n-1)
		overlap := rng.Intn(free + 1)
		p := RandomOverlap(n, free, overlap, rng)
		seen := map[[2]int]bool{}
		for x := uint64(0); x < uint64(1)<<uint(n); x++ {
			i, j := p.RowOf(x), p.ColOf(x)
			if !p.Valid(i, j) {
				t.Fatalf("trial %d: cell of pattern %d invalid", trial, x)
			}
			if p.Global(i, j) != x {
				t.Fatalf("trial %d: Global does not invert at %d", trial, x)
			}
			key := [2]int{i, j}
			if seen[key] {
				t.Fatalf("trial %d: cell collision at %v", trial, key)
			}
			seen[key] = true
		}
		// Count valid cells: must equal 2^n.
		valid := 0
		for i := 0; i < p.Rows(); i++ {
			for j := 0; j < p.Cols(); j++ {
				if p.Valid(i, j) {
					valid++
				}
			}
		}
		if valid != 1<<uint(n) {
			t.Fatalf("trial %d: %d valid cells, want %d", trial, valid, 1<<uint(n))
		}
	}
}

func TestRandomOverlapSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := RandomOverlap(8, 4, 2, rng)
	if p.FreeSize() != 4 || p.BoundSize() != 6 || p.Overlap() != 2 {
		t.Fatalf("sizes |A|=%d |B|=%d overlap=%d", p.FreeSize(), p.BoundSize(), p.Overlap())
	}
}

func TestRandomOverlapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range []struct{ free, ov int }{{0, 0}, {8, 0}, {4, -1}, {4, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomOverlap(8,%d,%d) did not panic", c.free, c.ov)
				}
			}()
			RandomOverlap(8, c.free, c.ov, rng)
		}()
	}
}

func TestOverlapString(t *testing.T) {
	p, _ := NewOverlap(4, 0b0111, 0b1100)
	if got := p.String(); got != "{A={x1,x2,x3}, B={x3,x4}, overlap=1}" {
		t.Errorf("String = %s", got)
	}
}

func TestEqualDistinguishesOverlap(t *testing.T) {
	disjoint := MustNew(4, 0b0011)
	overlap, _ := NewOverlap(4, 0b0011, 0b1110)
	if disjoint.Equal(overlap) {
		t.Fatal("partitions with same A but different B reported equal")
	}
}
