// Package partition models input partitions w = {A, B} of the n input
// variables of a Boolean function.
//
// A is the free set (its 2^|A| assignments index the rows of the Boolean
// matrix) and B is the bound set (2^|B| assignments index the columns).
// The package provides the (row, column) <-> global-pattern bijection used
// everywhere a Boolean matrix is built, plus deterministic and seeded
// random generation of candidate partitions for the DALTA outer loop.
package partition

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"strings"
)

// MaxVars is the largest supported variable count. Rows and Cols are
// computed as 1 << |A| and 1 << |B| in int arithmetic, and several
// consumers multiply Rows()*Cols() to size the Boolean matrix, so the
// bound keeps every such product far from int overflow (and the tables
// far from any realistic memory budget). Constructors reject larger n
// instead of silently wrapping.
const MaxVars = 30

// MaxSide caps |A| and |B| individually. A side of 26 already means a
// 2^26-entry scatter table (512 MiB of uint64 per side at 26); beyond it
// 1 << len(pos) in Rows/Cols/scatterTable approaches the int32 range and
// the table allocation is guaranteed to be a bug, not a workload.
const MaxSide = 26

// Partition is an input partition of n variables into a free set A and a
// bound set B. It is immutable after construction.
//
// In the disjoint case (the paper's setting) A and B partition the
// variables. The non-disjoint extension of [10] lets A and B overlap:
// every variable belongs to at least one set and shared variables appear
// in both the row and the column index. Matrix cells whose row and column
// disagree on a shared variable correspond to no input pattern; Valid
// reports reachability and consumers treat unreachable cells as
// zero-probability don't-cares.
type Partition struct {
	n     int
	maskA uint64 // bit b set <=> variable x_{b+1} is in the free set A
	maskB uint64 // bit b set <=> variable x_{b+1} is in the bound set B
	posA  []int  // variable indices in A, ascending
	posB  []int  // variable indices in B, ascending

	// rowBits[i] is the global pattern whose A-variables spell i (bit t of
	// i goes to variable posA[t]) and whose B-variables are 0; colBits is
	// the mirror for B. Global pattern of cell (i,j) = rowBits[i]|colBits[j].
	rowBits []uint64
	colBits []uint64

	// sharedRow[i] / sharedCol[j] are the shared-variable assignments of
	// row i / column j; cell (i, j) is reachable iff they agree. Nil for
	// disjoint partitions (everything reachable).
	sharedRow []uint32
	sharedCol []uint32
}

// New builds a partition of n variables from the free-set mask. Bit b of
// maskA set means variable index b (0-based) belongs to A; all other
// variables belong to B. Both sets must be non-empty.
func New(n int, maskA uint64) (*Partition, error) {
	if n <= 0 || n > MaxVars {
		return nil, fmt.Errorf("partition: unsupported variable count %d (max %d)", n, MaxVars)
	}
	full := uint64(1)<<uint(n) - 1
	if maskA&^full != 0 {
		return nil, fmt.Errorf("partition: maskA %#x has bits beyond %d variables", maskA, n)
	}
	if maskA == 0 || maskA == full {
		return nil, fmt.Errorf("partition: both A and B must be non-empty (maskA=%#x)", maskA)
	}
	return NewOverlap(n, maskA, full&^maskA)
}

// NewOverlap builds a possibly non-disjoint partition from explicit free-
// and bound-set masks. Every variable must belong to at least one set;
// variables in both are shared (the non-disjoint extension of [10]).
func NewOverlap(n int, maskA, maskB uint64) (*Partition, error) {
	if n <= 0 || n > MaxVars {
		return nil, fmt.Errorf("partition: unsupported variable count %d (max %d)", n, MaxVars)
	}
	full := uint64(1)<<uint(n) - 1
	if maskA&^full != 0 || maskB&^full != 0 {
		return nil, fmt.Errorf("partition: masks %#x/%#x exceed %d variables", maskA, maskB, n)
	}
	if maskA == 0 || maskB == 0 {
		return nil, fmt.Errorf("partition: both A and B must be non-empty")
	}
	if maskA|maskB != full {
		return nil, fmt.Errorf("partition: masks %#x/%#x do not cover all %d variables", maskA, maskB, n)
	}
	p := &Partition{n: n, maskA: maskA, maskB: maskB}
	for b := 0; b < n; b++ {
		if maskA&(1<<uint(b)) != 0 {
			p.posA = append(p.posA, b)
		}
		if maskB&(1<<uint(b)) != 0 {
			p.posB = append(p.posB, b)
		}
	}
	// This check must run before scatterTable: a larger side would shift
	// 1 << len(pos) toward overflow and allocate gigabyte-scale tables.
	if len(p.posA) > MaxSide || len(p.posB) > MaxSide {
		return nil, fmt.Errorf("partition: side sizes %d/%d too large (max %d)", len(p.posA), len(p.posB), MaxSide)
	}
	p.rowBits = scatterTable(p.posA)
	p.colBits = scatterTable(p.posB)
	if shared := maskA & maskB; shared != 0 {
		var sharedPos []int
		for b := 0; b < n; b++ {
			if shared&(1<<uint(b)) != 0 {
				sharedPos = append(sharedPos, b)
			}
		}
		p.sharedRow = make([]uint32, len(p.rowBits))
		for i, bits := range p.rowBits {
			p.sharedRow[i] = uint32(gather(bits, sharedPos))
		}
		p.sharedCol = make([]uint32, len(p.colBits))
		for j, bits := range p.colBits {
			p.sharedCol[j] = uint32(gather(bits, sharedPos))
		}
	}
	return p, nil
}

// MustNew is New that panics on error, for literals in tests and examples.
func MustNew(n int, maskA uint64) *Partition {
	p, err := New(n, maskA)
	if err != nil {
		panic(err)
	}
	return p
}

// FromSets builds a partition from explicit 0-based variable index sets.
// The sets must be disjoint and cover exactly 0..n-1.
func FromSets(n int, a []int) (*Partition, error) {
	var mask uint64
	for _, v := range a {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("partition: variable index %d out of range [0,%d)", v, n)
		}
		if mask&(1<<uint(v)) != 0 {
			return nil, fmt.Errorf("partition: duplicate variable index %d", v)
		}
		mask |= 1 << uint(v)
	}
	return New(n, mask)
}

// scatterTable precomputes, for every local index over the given variable
// positions, the global pattern with those bits placed.
func scatterTable(pos []int) []uint64 {
	size := 1 << uint(len(pos))
	table := make([]uint64, size)
	for local := 0; local < size; local++ {
		var g uint64
		for t, p := range pos {
			if local&(1<<uint(t)) != 0 {
				g |= 1 << uint(p)
			}
		}
		table[local] = g
	}
	return table
}

// NumVars returns n.
func (p *Partition) NumVars() int { return p.n }

// FreeSize returns |A|.
func (p *Partition) FreeSize() int { return len(p.posA) }

// BoundSize returns |B|.
func (p *Partition) BoundSize() int { return len(p.posB) }

// Rows returns r = 2^|A|, the Boolean-matrix row count.
func (p *Partition) Rows() int { return 1 << uint(len(p.posA)) }

// Cols returns c = 2^|B|, the Boolean-matrix column count.
func (p *Partition) Cols() int { return 1 << uint(len(p.posB)) }

// MaskA returns the free-set bitmask.
func (p *Partition) MaskA() uint64 { return p.maskA }

// FreeVars returns the 0-based variable indices of the free set A.
func (p *Partition) FreeVars() []int { return append([]int(nil), p.posA...) }

// BoundVars returns the 0-based variable indices of the bound set B.
func (p *Partition) BoundVars() []int { return append([]int(nil), p.posB...) }

// RowOf extracts the row index (assignment of the A variables) from a
// global input pattern.
func (p *Partition) RowOf(x uint64) int {
	return gather(x, p.posA)
}

// ColOf extracts the column index (assignment of the B variables) from a
// global input pattern.
func (p *Partition) ColOf(x uint64) int {
	return gather(x, p.posB)
}

func gather(x uint64, pos []int) int {
	local := 0
	for t, b := range pos {
		if x&(1<<uint(b)) != 0 {
			local |= 1 << uint(t)
		}
	}
	return local
}

// Global returns the global input pattern of matrix cell (row i, col j).
// For non-disjoint partitions the result is meaningful only when
// Valid(i, j) holds.
func (p *Partition) Global(i, j int) uint64 {
	return p.rowBits[i] | p.colBits[j]
}

// Disjoint reports whether A and B share no variables (the paper's
// setting; Valid is then vacuously true).
func (p *Partition) Disjoint() bool { return p.sharedRow == nil }

// Overlap returns the number of shared variables.
func (p *Partition) Overlap() int {
	return len(p.posA) + len(p.posB) - p.n
}

// MaskB returns the bound-set bitmask.
func (p *Partition) MaskB() uint64 { return p.maskB }

// Valid reports whether matrix cell (i, j) corresponds to an input
// pattern: the row's and the column's shared-variable assignments agree.
// Always true for disjoint partitions.
func (p *Partition) Valid(i, j int) bool {
	if p.sharedRow == nil {
		return true
	}
	return p.sharedRow[i] == p.sharedCol[j]
}

// Equal reports whether two partitions are over the same variables with
// the same free and bound sets.
func (p *Partition) Equal(q *Partition) bool {
	return p.n == q.n && p.maskA == q.maskA && p.maskB == q.maskB
}

// String renders the partition as {A={x1,x3}, B={x2}} using the paper's
// 1-based variable names.
func (p *Partition) String() string {
	name := func(pos []int) string {
		parts := make([]string, len(pos))
		for i, b := range pos {
			parts[i] = fmt.Sprintf("x%d", b+1)
		}
		return strings.Join(parts, ",")
	}
	if p.Disjoint() {
		return fmt.Sprintf("{A={%s}, B={%s}}", name(p.posA), name(p.posB))
	}
	return fmt.Sprintf("{A={%s}, B={%s}, overlap=%d}", name(p.posA), name(p.posB), p.Overlap())
}

// RandomOverlap returns a random non-disjoint partition: A has freeSize
// variables, and overlap of them are additionally shared into B (so
// |B| = n - freeSize + overlap). overlap = 0 reduces to Random.
func RandomOverlap(n, freeSize, overlap int, rng *rand.Rand) *Partition {
	if freeSize <= 0 || freeSize >= n {
		panic(fmt.Sprintf("partition: freeSize %d must be in (0,%d)", freeSize, n))
	}
	if overlap < 0 || overlap > freeSize {
		panic(fmt.Sprintf("partition: overlap %d must be in [0,%d]", overlap, freeSize))
	}
	perm := rng.Perm(n)
	var maskA uint64
	for _, v := range perm[:freeSize] {
		maskA |= 1 << uint(v)
	}
	full := uint64(1)<<uint(n) - 1
	maskB := full &^ maskA
	// Share the first `overlap` free variables into B.
	for _, v := range perm[:overlap] {
		maskB |= 1 << uint(v)
	}
	p, err := NewOverlap(n, maskA, maskB)
	if err != nil {
		panic(err) // construction above satisfies the invariants
	}
	return p
}

// Random returns a uniformly random partition with exactly freeSize
// variables in A, drawn with rng.
func Random(n, freeSize int, rng *rand.Rand) *Partition {
	if freeSize <= 0 || freeSize >= n {
		panic(fmt.Sprintf("partition: freeSize %d must be in (0,%d)", freeSize, n))
	}
	perm := rng.Perm(n)
	var mask uint64
	for _, v := range perm[:freeSize] {
		mask |= 1 << uint(v)
	}
	return MustNew(n, mask)
}

// RandomDistinct returns up to count distinct random partitions with the
// given free-set size. If count exceeds the number of distinct partitions
// C(n, freeSize), all of them are returned (in random order).
func RandomDistinct(n, freeSize, count int, rng *rand.Rand) []*Partition {
	total := binomial(n, freeSize)
	if count >= total {
		all := Enumerate(n, freeSize)
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return all
	}
	seen := make(map[uint64]bool, count)
	out := make([]*Partition, 0, count)
	for len(out) < count {
		p := Random(n, freeSize, rng)
		if !seen[p.maskA] {
			seen[p.maskA] = true
			out = append(out, p)
		}
	}
	return out
}

// Enumerate returns every partition with |A| = freeSize in ascending mask
// order. Intended for exhaustive small-n tests.
func Enumerate(n, freeSize int) []*Partition {
	var out []*Partition
	full := uint64(1) << uint(n)
	for mask := uint64(1); mask < full; mask++ {
		if bits.OnesCount64(mask) == freeSize {
			out = append(out, MustNew(n, mask))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].maskA < out[j].maskA })
	return out
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}
