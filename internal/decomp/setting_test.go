package decomp

import (
	"math/rand"
	"testing"

	"isinglut/internal/bitvec"
	"isinglut/internal/boolmatrix"
	"isinglut/internal/partition"
	"isinglut/internal/truthtable"
)

func TestRowSettingValidate(t *testing.T) {
	part := partition.MustNew(4, 0b0011)
	good := &RowSetting{Part: part, V: bitvec.New(4), S: make([]RowType, 4)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*RowSetting{
		{Part: nil, V: bitvec.New(4), S: make([]RowType, 4)},
		{Part: part, V: bitvec.New(3), S: make([]RowType, 4)},
		{Part: part, V: bitvec.New(4), S: make([]RowType, 3)},
		{Part: part, V: nil, S: make([]RowType, 4)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad setting %d validated", i)
		}
	}
	invalid := &RowSetting{Part: part, V: bitvec.New(4), S: []RowType{0, 1, 2, 5}}
	if err := invalid.Validate(); err == nil {
		t.Error("invalid row type validated")
	}
}

func TestColSettingValidate(t *testing.T) {
	part := partition.MustNew(4, 0b0011)
	if err := NewColSetting(part).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*ColSetting{
		{Part: nil, V1: bitvec.New(4), V2: bitvec.New(4), T: bitvec.New(4)},
		{Part: part, V1: bitvec.New(3), V2: bitvec.New(4), T: bitvec.New(4)},
		{Part: part, V1: bitvec.New(4), V2: bitvec.New(5), T: bitvec.New(4)},
		{Part: part, V1: bitvec.New(4), V2: bitvec.New(4), T: bitvec.New(2)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad setting %d validated", i)
		}
	}
}

func TestRowTypeString(t *testing.T) {
	cases := map[RowType]string{RowZero: "0", RowOne: "1", RowPattern: "V", RowComplement: "~V"}
	for rt, want := range cases {
		if rt.String() != want {
			t.Errorf("%d.String() = %s", rt, rt.String())
		}
	}
}

func TestColSettingEntryValueEq3(t *testing.T) {
	// Eq. (3): O-hat = (1-T_j) V1_i + T_j V2_i on every combination.
	part := partition.MustNew(2, 0b01)
	s := NewColSetting(part)
	s.V1.Set(0, true)  // V1 = (1, 0)
	s.V2.Set(1, true)  // V2 = (0, 1)
	s.T.Set(1, true)   // T  = (0, 1)
	want := [2][2]int{ // [i][j]
		{1, 0},
		{0, 1},
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got := s.EntryValue(i, j); got != want[i][j] {
				t.Errorf("EntryValue(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}

func TestColSettingClone(t *testing.T) {
	part := partition.MustNew(3, 0b001)
	s := NewColSetting(part)
	s.V1.Set(0, true)
	c := s.Clone()
	c.V1.Set(1, true)
	c.T.Set(0, true)
	if s.V1.Get(1) || s.T.Get(0) {
		t.Error("Clone shares storage")
	}
}

func TestToColSettingEquivalence(t *testing.T) {
	// A row setting and its column conversion must produce identical
	// approximate matrices, for random settings.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(4)
		part := partition.Random(n, 1+rng.Intn(n-1), rng)
		rs := &RowSetting{
			Part: part,
			V:    bitvec.New(part.Cols()),
			S:    make([]RowType, part.Rows()),
		}
		for j := 0; j < part.Cols(); j++ {
			rs.V.Set(j, rng.Intn(2) == 1)
		}
		for i := range rs.S {
			rs.S[i] = RowType(rng.Intn(4))
		}
		cs := rs.ToColSetting()
		for i := 0; i < part.Rows(); i++ {
			for j := 0; j < part.Cols(); j++ {
				if rs.EntryValue(i, j) != cs.EntryValue(i, j) {
					t.Fatalf("trial %d: entry (%d,%d) differs", trial, i, j)
				}
			}
		}
		if !rs.ApproxTable().Equal(cs.ApproxTable()) {
			t.Fatalf("trial %d: approx tables differ", trial)
		}
	}
}

func TestSettingErrorAgainstHamming(t *testing.T) {
	// Under the uniform distribution, SettingError * 2^n equals the
	// Hamming distance between the approximate table and the exact one.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(3)
		part := partition.Random(n, 1+rng.Intn(n-1), rng)
		tt := truthtable.Random(n, 1, rng)
		m := boolmatrix.Build(tt.Component(0), part, nil)
		s := NewColSetting(part)
		for i := 0; i < part.Rows(); i++ {
			s.V1.Set(i, rng.Intn(2) == 1)
			s.V2.Set(i, rng.Intn(2) == 1)
		}
		for j := 0; j < part.Cols(); j++ {
			s.T.Set(j, rng.Intn(2) == 1)
		}
		got := SettingError(m, s) * float64(uint64(1)<<uint(n))
		want := float64(s.ApproxTable().HammingDistance(tt.Component(0)))
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: SettingError*2^n = %g, Hamming = %g", trial, got, want)
		}
	}
}

func TestRowSettingErrorAgainstHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(3)
		part := partition.Random(n, 1+rng.Intn(n-1), rng)
		tt := truthtable.Random(n, 1, rng)
		m := boolmatrix.Build(tt.Component(0), part, nil)
		s := &RowSetting{Part: part, V: bitvec.New(part.Cols()), S: make([]RowType, part.Rows())}
		for j := 0; j < part.Cols(); j++ {
			s.V.Set(j, rng.Intn(2) == 1)
		}
		for i := range s.S {
			s.S[i] = RowType(rng.Intn(4))
		}
		got := RowSettingError(m, s) * float64(uint64(1)<<uint(n))
		want := float64(s.ApproxTable().HammingDistance(tt.Component(0)))
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: RowSettingError*2^n = %g, Hamming = %g", trial, got, want)
		}
	}
}

func TestSettingErrorPartitionMismatchPanics(t *testing.T) {
	tt := truthtable.New(4, 1)
	m := boolmatrix.Build(tt.Component(0), partition.MustNew(4, 0b0011), nil)
	s := NewColSetting(partition.MustNew(4, 0b0101))
	defer func() {
		if recover() == nil {
			t.Fatal("partition mismatch did not panic")
		}
	}()
	SettingError(m, s)
}

func TestOverlapApproxTableUsesOnlyValidCells(t *testing.T) {
	// With a non-disjoint partition, ApproxTable must derive each input
	// pattern's value from its own (row, col) cell, never from an
	// unreachable cell that happens to share a Global image.
	rng := rand.New(rand.NewSource(11))
	part, err := partition.NewOverlap(5, 0b00111, 0b11110)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		s := NewColSetting(part)
		for i := 0; i < part.Rows(); i++ {
			s.V1.Set(i, rng.Intn(2) == 1)
			s.V2.Set(i, rng.Intn(2) == 1)
		}
		for j := 0; j < part.Cols(); j++ {
			s.T.Set(j, rng.Intn(2) == 1)
		}
		table := s.ApproxTable()
		for x := uint64(0); x < 32; x++ {
			i, j := part.RowOf(x), part.ColOf(x)
			if table.Bit(int(x)) != s.EntryValue(i, j) {
				t.Fatalf("trial %d: pattern %d disagrees with its cell", trial, x)
			}
		}
		// Synthesized pair agrees pointwise too.
		d := s.Synthesize()
		for x := uint64(0); x < 32; x++ {
			if d.Eval(x) != table.Bit(int(x)) {
				t.Fatalf("trial %d: Eval(%d) != ApproxTable", trial, x)
			}
		}
	}
}
