package decomp

import (
	"isinglut/internal/bitvec"
	"isinglut/internal/boolmatrix"
	"isinglut/internal/partition"
)

// CheckRowDecomposable tests Theorem 1: the function represented by the
// matrix has an exact disjoint decomposition over the matrix's partition
// iff its rows take at most four types {all-0, all-1, V, ~V}. On success
// it returns a witness row setting that reproduces the matrix exactly.
func CheckRowDecomposable(m *boolmatrix.Matrix) (*RowSetting, bool) {
	if !m.Partition().Disjoint() {
		panic("decomp: CheckRowDecomposable requires a disjoint partition")
	}
	r, c := m.Rows(), m.Cols()
	setting := &RowSetting{
		Part: m.Partition(),
		V:    bitvec.New(c),
		S:    make([]RowType, r),
	}
	var pattern *bitvec.Vector // the fixed pattern V once discovered
	for i := 0; i < r; i++ {
		row := m.Row(i)
		switch {
		case row.IsZero():
			setting.S[i] = RowZero
		case row.IsOnes():
			setting.S[i] = RowOne
		case pattern == nil:
			pattern = row
			setting.S[i] = RowPattern
		case row.Equal(pattern):
			setting.S[i] = RowPattern
		case row.Equal(pattern.Not()):
			setting.S[i] = RowComplement
		default:
			return nil, false
		}
	}
	if pattern != nil {
		setting.V = pattern
	}
	return setting, true
}

// CheckColDecomposable tests Theorem 2: the function has an exact disjoint
// decomposition over the partition iff the matrix has at most two distinct
// column types. On success it returns a witness column setting that
// reproduces the matrix exactly (if only one distinct column exists, both
// patterns are set to it).
func CheckColDecomposable(m *boolmatrix.Matrix) (*ColSetting, bool) {
	if !m.Partition().Disjoint() {
		panic("decomp: CheckColDecomposable requires a disjoint partition")
	}
	c := m.Cols()
	setting := NewColSetting(m.Partition())
	var pat1, pat2 *bitvec.Vector
	for j := 0; j < c; j++ {
		col := m.Col(j)
		switch {
		case pat1 == nil:
			pat1 = col
		case col.Equal(pat1):
			// type 0, nothing to do
		case pat2 == nil:
			pat2 = col
			setting.T.Set(j, true)
		case col.Equal(pat2):
			setting.T.Set(j, true)
		default:
			return nil, false
		}
	}
	if pat1 != nil {
		setting.V1.CopyFrom(pat1)
	}
	if pat2 != nil {
		setting.V2.CopyFrom(pat2)
	} else if pat1 != nil {
		setting.V2.CopyFrom(pat1) // degenerate: a single column type
	}
	return setting, true
}

// Decomposable reports whether the component with truth table tt has an
// exact disjoint decomposition over part. It uses the column-based test.
func Decomposable(tt *bitvec.Vector, part *partition.Partition) bool {
	m := boolmatrix.Build(tt, part, nil)
	_, ok := CheckColDecomposable(m)
	return ok
}

// Decomposition is the synthesized pair of sub-functions of a disjoint
// decomposition g(X) = F(phi(B), A).
//
//   - Phi is the truth table of phi over the bound set: Phi bit j is
//     phi(column-j assignment of B). It has c = 2^|B| bits.
//   - F0/F1 give F(t, i) for t = 0 and 1 over the free set: F0 bit i is
//     F(0, row-i assignment of A). Each has r = 2^|A| bits.
//
// Total storage is c + 2r bits versus r*c for the flat table.
type Decomposition struct {
	Part *partition.Partition
	Phi  *bitvec.Vector // length c
	F0   *bitvec.Vector // length r
	F1   *bitvec.Vector // length r
}

// Synthesize converts a column setting into the phi/F pair: phi's table is
// T and F(t, i) selects V1_i or V2_i.
func (s *ColSetting) Synthesize() *Decomposition {
	return &Decomposition{
		Part: s.Part,
		Phi:  s.T.Clone(),
		F0:   s.V1.Clone(),
		F1:   s.V2.Clone(),
	}
}

// Synthesize converts a row setting into the phi/F pair: phi's table is V
// and F(t, i) is 0, 1, t, or 1-t by row type.
func (s *RowSetting) Synthesize() *Decomposition {
	r := s.Part.Rows()
	d := &Decomposition{
		Part: s.Part,
		Phi:  s.V.Clone(),
		F0:   bitvec.New(r),
		F1:   bitvec.New(r),
	}
	for i, t := range s.S {
		switch t {
		case RowOne:
			d.F0.Set(i, true)
			d.F1.Set(i, true)
		case RowPattern:
			d.F1.Set(i, true)
		case RowComplement:
			d.F0.Set(i, true)
		}
	}
	return d
}

// Eval computes F(phi(B-part of x), A-part of x) for a global pattern x.
func (d *Decomposition) Eval(x uint64) int {
	j := d.Part.ColOf(x)
	i := d.Part.RowOf(x)
	if d.Phi.Get(j) {
		return d.F1.Bit(i)
	}
	return d.F0.Bit(i)
}

// Recompose materializes the full truth table of F(phi(B), A).
func (d *Decomposition) Recompose() *bitvec.Vector {
	n := d.Part.NumVars()
	out := bitvec.New(1 << uint(n))
	r, c := d.Part.Rows(), d.Part.Cols()
	for j := 0; j < c; j++ {
		sel := d.F0
		if d.Phi.Get(j) {
			sel = d.F1
		}
		for i := 0; i < r; i++ {
			if sel.Get(i) && d.Part.Valid(i, j) {
				out.Set(int(d.Part.Global(i, j)), true)
			}
		}
	}
	return out
}

// Bits returns the total LUT storage of the decomposition in bits
// (c + 2r), the quantity the paper's Fig. 1 motivates minimizing.
func (d *Decomposition) Bits() int {
	return d.Phi.Len() + d.F0.Len() + d.F1.Len()
}
