// Package decomp implements disjoint Boolean decomposition: the exact
// row-based (Theorem 1) and column-based (Theorem 2) decomposability
// conditions, decomposition settings, extraction of the sub-functions
// phi and F, and recomposition g(X) = F(phi(B), A).
//
// A decomposition setting fixes, for one component function under one
// input partition, the free parameters the core COP optimizes:
//
//   - row-based:    (V, S)       — row pattern and per-row types (Thm 1)
//   - column-based: (V1, V2, T)  — two column patterns and per-column
//     type bits (Thm 2, the paper's contribution)
//
// Applying a setting yields the approximate matrix O-hat via Eq. (3) (or
// its row analogue) and, through the partition, the approximate component
// truth table.
package decomp

import (
	"fmt"

	"isinglut/internal/bitvec"
	"isinglut/internal/boolmatrix"
	"isinglut/internal/partition"
)

// RowType classifies a row of the Boolean matrix per Theorem 1.
type RowType uint8

const (
	// RowZero is a row of all 0s (type 1 in the paper).
	RowZero RowType = iota
	// RowOne is a row of all 1s (type 2).
	RowOne
	// RowPattern is a row equal to the fixed pattern V (type 3).
	RowPattern
	// RowComplement is a row equal to the complement of V (type 4).
	RowComplement
)

// String implements fmt.Stringer.
func (t RowType) String() string {
	switch t {
	case RowZero:
		return "0"
	case RowOne:
		return "1"
	case RowPattern:
		return "V"
	case RowComplement:
		return "~V"
	}
	return fmt.Sprintf("RowType(%d)", uint8(t))
}

// RowSetting is a row-based decomposition setting (w, V, S): the pattern V
// has one bit per column and S assigns each row one of the four types.
type RowSetting struct {
	Part *partition.Partition
	V    *bitvec.Vector // length c
	S    []RowType      // length r
}

// Validate checks internal consistency against the partition dimensions.
func (s *RowSetting) Validate() error {
	if s.Part == nil {
		return fmt.Errorf("decomp: RowSetting has nil partition")
	}
	if s.V == nil || s.V.Len() != s.Part.Cols() {
		return fmt.Errorf("decomp: RowSetting V length %d != c=%d", lenOrNeg(s.V), s.Part.Cols())
	}
	if len(s.S) != s.Part.Rows() {
		return fmt.Errorf("decomp: RowSetting S length %d != r=%d", len(s.S), s.Part.Rows())
	}
	for i, t := range s.S {
		if t > RowComplement {
			return fmt.Errorf("decomp: RowSetting S[%d] invalid type %d", i, t)
		}
	}
	return nil
}

// EntryValue returns the approximate value O-hat at cell (i, j) implied by
// the setting.
func (s *RowSetting) EntryValue(i, j int) int {
	switch s.S[i] {
	case RowZero:
		return 0
	case RowOne:
		return 1
	case RowPattern:
		return s.V.Bit(j)
	default: // RowComplement
		return 1 - s.V.Bit(j)
	}
}

// ColSetting is a column-based decomposition setting (w, V1, V2, T): two
// column patterns of r bits each and a per-column type vector of c bits
// (T_j = 0 selects pattern 1, T_j = 1 selects pattern 2), per Eq. (3).
type ColSetting struct {
	Part *partition.Partition
	V1   *bitvec.Vector // length r, column pattern 1
	V2   *bitvec.Vector // length r, column pattern 2
	T    *bitvec.Vector // length c, column types
}

// NewColSetting allocates an all-zero column setting for the partition.
func NewColSetting(p *partition.Partition) *ColSetting {
	return &ColSetting{
		Part: p,
		V1:   bitvec.New(p.Rows()),
		V2:   bitvec.New(p.Rows()),
		T:    bitvec.New(p.Cols()),
	}
}

// Validate checks internal consistency against the partition dimensions.
func (s *ColSetting) Validate() error {
	if s.Part == nil {
		return fmt.Errorf("decomp: ColSetting has nil partition")
	}
	r, c := s.Part.Rows(), s.Part.Cols()
	if s.V1 == nil || s.V1.Len() != r {
		return fmt.Errorf("decomp: ColSetting V1 length %d != r=%d", lenOrNeg(s.V1), r)
	}
	if s.V2 == nil || s.V2.Len() != r {
		return fmt.Errorf("decomp: ColSetting V2 length %d != r=%d", lenOrNeg(s.V2), r)
	}
	if s.T == nil || s.T.Len() != c {
		return fmt.Errorf("decomp: ColSetting T length %d != c=%d", lenOrNeg(s.T), c)
	}
	return nil
}

// Clone returns a deep copy of the setting.
func (s *ColSetting) Clone() *ColSetting {
	return &ColSetting{Part: s.Part, V1: s.V1.Clone(), V2: s.V2.Clone(), T: s.T.Clone()}
}

// EntryValue returns O-hat at cell (i, j) per Eq. (3):
// (1-T_j)*V1_i + T_j*V2_i.
func (s *ColSetting) EntryValue(i, j int) int {
	if s.T.Get(j) {
		return s.V2.Bit(i)
	}
	return s.V1.Bit(i)
}

func lenOrNeg(v *bitvec.Vector) int {
	if v == nil {
		return -1
	}
	return v.Len()
}

// ApproxTable materializes the approximate component truth table (2^n
// bits) implied by a column setting.
func (s *ColSetting) ApproxTable() *bitvec.Vector {
	p := s.Part
	out := bitvec.New(1 << uint(p.NumVars()))
	r, c := p.Rows(), p.Cols()
	for j := 0; j < c; j++ {
		var pat *bitvec.Vector
		if s.T.Get(j) {
			pat = s.V2
		} else {
			pat = s.V1
		}
		for i := 0; i < r; i++ {
			if pat.Get(i) && p.Valid(i, j) {
				out.Set(int(p.Global(i, j)), true)
			}
		}
	}
	return out
}

// ApproxTable materializes the approximate component truth table implied
// by a row setting.
func (s *RowSetting) ApproxTable() *bitvec.Vector {
	p := s.Part
	out := bitvec.New(1 << uint(p.NumVars()))
	r, c := p.Rows(), p.Cols()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if s.EntryValue(i, j) == 1 && p.Valid(i, j) {
				out.Set(int(p.Global(i, j)), true)
			}
		}
	}
	return out
}

// ToColSetting converts a row setting into the equivalent column setting
// describing the same approximate matrix. Row types map to column
// patterns: column j selects pattern V2 when V_j = 1 and V1 otherwise;
// V1_i is the matrix value of row i in columns with V_j = 0, which is 0
// for RowZero, 1 for RowOne, 0 for RowPattern (V_j = 0 there) and 1 for
// RowComplement; V2 is the mirror.
func (s *RowSetting) ToColSetting() *ColSetting {
	c := NewColSetting(s.Part)
	for j := 0; j < s.Part.Cols(); j++ {
		c.T.Set(j, s.V.Get(j))
	}
	for i, t := range s.S {
		switch t {
		case RowOne:
			c.V1.Set(i, true)
			c.V2.Set(i, true)
		case RowPattern:
			c.V2.Set(i, true) // columns where V_j=1 hold 1
		case RowComplement:
			c.V1.Set(i, true) // columns where V_j=0 hold 1
		}
	}
	return c
}

// SettingError computes the weighted error of the approximate matrix
// implied by a column setting against the exact matrix:
// sum_ij p_ij * |O-hat_ij - O_ij| (Eq. 4). The matrix must be built over
// the same partition.
func SettingError(m *boolmatrix.Matrix, s *ColSetting) float64 {
	if !m.Partition().Equal(s.Part) {
		panic("decomp: SettingError partition mismatch")
	}
	total := 0.0
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if s.EntryValue(i, j) != m.Value(i, j) {
				total += m.Prob(i, j)
			}
		}
	}
	return total
}

// RowSettingError is SettingError for row settings.
func RowSettingError(m *boolmatrix.Matrix, s *RowSetting) float64 {
	if !m.Partition().Equal(s.Part) {
		panic("decomp: RowSettingError partition mismatch")
	}
	total := 0.0
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if s.EntryValue(i, j) != m.Value(i, j) {
				total += m.Prob(i, j)
			}
		}
	}
	return total
}
