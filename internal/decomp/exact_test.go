package decomp

import (
	"math/rand"
	"testing"

	"isinglut/internal/bitvec"
	"isinglut/internal/boolmatrix"
	"isinglut/internal/partition"
	"isinglut/internal/truthtable"
)

// fig2Matrix reproduces the paper's Fig. 2: a 4x4 Boolean matrix over
// A = {x1, x2}, B = {x3, x4} with rows V, all-0, all-1, ~V for
// V = (1, 1, 0, 0). It builds the underlying 4-input function.
func fig2Function() (*truthtable.Table, *partition.Partition) {
	part := partition.MustNew(4, 0b0011)
	rows := [][]int{
		{1, 1, 0, 0}, // type 3: pattern V
		{0, 0, 0, 0}, // type 1
		{1, 1, 1, 1}, // type 2
		{0, 0, 1, 1}, // type 4: complement
	}
	tt := truthtable.New(4, 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			tt.SetBit(0, part.Global(i, j), rows[i][j] == 1)
		}
	}
	return tt, part
}

func TestFig2RowDecomposition(t *testing.T) {
	tt, part := fig2Function()
	m := boolmatrix.Build(tt.Component(0), part, nil)
	setting, ok := CheckRowDecomposable(m)
	if !ok {
		t.Fatal("Fig. 2 matrix not row-decomposable")
	}
	if got := setting.V.String(); got != "1100" {
		t.Errorf("V = %s, want 1100", got)
	}
	want := []RowType{RowPattern, RowZero, RowOne, RowComplement}
	for i, w := range want {
		if setting.S[i] != w {
			t.Errorf("S[%d] = %v, want %v", i, setting.S[i], w)
		}
	}
	// The setting must reproduce the matrix exactly.
	if err := setting.Validate(); err != nil {
		t.Fatal(err)
	}
	if !setting.ApproxTable().Equal(tt.Component(0)) {
		t.Error("row setting does not reproduce the function")
	}
}

func TestFig2ColDecomposition(t *testing.T) {
	tt, part := fig2Function()
	m := boolmatrix.Build(tt.Component(0), part, nil)
	setting, ok := CheckColDecomposable(m)
	if !ok {
		t.Fatal("Fig. 2 matrix not column-decomposable")
	}
	if err := setting.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper reports the two column types (1,0,1,0) and (0,0,1,1).
	if got := setting.V1.String(); got != "1010" {
		t.Errorf("V1 = %s, want 1010", got)
	}
	if got := setting.V2.String(); got != "0011" {
		t.Errorf("V2 = %s, want 0011", got)
	}
	if got := setting.T.String(); got != "0011" {
		t.Errorf("T = %s, want 0011", got)
	}
	if !setting.ApproxTable().Equal(tt.Component(0)) {
		t.Error("column setting does not reproduce the function")
	}
}

func TestNonDecomposableDetected(t *testing.T) {
	// Three distinct non-complementary, non-constant columns.
	part := partition.MustNew(4, 0b0011)
	rows := [][]int{
		{1, 0, 0, 1},
		{0, 1, 0, 1},
		{0, 0, 1, 1},
		{1, 1, 1, 0},
	}
	tt := truthtable.New(4, 1)
	for i := range rows {
		for j := range rows[i] {
			tt.SetBit(0, part.Global(i, j), rows[i][j] == 1)
		}
	}
	m := boolmatrix.Build(tt.Component(0), part, nil)
	if _, ok := CheckRowDecomposable(m); ok {
		t.Error("row check accepted non-decomposable matrix")
	}
	if _, ok := CheckColDecomposable(m); ok {
		t.Error("column check accepted non-decomposable matrix")
	}
}

// randomDecomposable builds a function guaranteed decomposable over part
// by construction: g(X) = F(phi(B), A) for random phi and F.
func randomDecomposable(part *partition.Partition, rng *rand.Rand) *bitvec.Vector {
	r, c := part.Rows(), part.Cols()
	phi := bitvec.New(c)
	f0 := bitvec.New(r)
	f1 := bitvec.New(r)
	for j := 0; j < c; j++ {
		phi.Set(j, rng.Intn(2) == 1)
	}
	for i := 0; i < r; i++ {
		f0.Set(i, rng.Intn(2) == 1)
		f1.Set(i, rng.Intn(2) == 1)
	}
	d := &Decomposition{Part: part, Phi: phi, F0: f0, F1: f1}
	return d.Recompose()
}

// TestTheoremEquivalence is the paper's Theorems 1 and 2: the row-based
// and column-based conditions accept exactly the same functions, namely
// the disjointly decomposable ones.
func TestTheoremEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(4)
		free := 1 + rng.Intn(n-1)
		part := partition.Random(n, free, rng)
		var tt *bitvec.Vector
		if trial%2 == 0 {
			tt = randomDecomposable(part, rng)
		} else {
			tt = truthtable.Random(n, 1, rng).Component(0)
		}
		m := boolmatrix.Build(tt, part, nil)
		_, rowOK := CheckRowDecomposable(m)
		_, colOK := CheckColDecomposable(m)
		if rowOK != colOK {
			t.Fatalf("trial %d: theorem disagreement (row=%v col=%v) on %v", trial, rowOK, colOK, part)
		}
		if trial%2 == 0 && !colOK {
			t.Fatalf("trial %d: constructed decomposable function rejected", trial)
		}
	}
}

// TestWitnessesReproduce checks that whenever a check succeeds, the
// returned setting reproduces the function bit-exactly.
func TestWitnessesReproduce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(3)
		part := partition.Random(n, 1+rng.Intn(n-1), rng)
		tt := randomDecomposable(part, rng)
		m := boolmatrix.Build(tt, part, nil)
		if rs, ok := CheckRowDecomposable(m); ok {
			if !rs.ApproxTable().Equal(tt) {
				t.Fatal("row witness does not reproduce function")
			}
		} else {
			t.Fatal("constructed function rejected by row check")
		}
		if cs, ok := CheckColDecomposable(m); ok {
			if !cs.ApproxTable().Equal(tt) {
				t.Fatal("column witness does not reproduce function")
			}
		}
	}
}

func TestDecomposableHelper(t *testing.T) {
	tt, part := fig2Function()
	if !Decomposable(tt.Component(0), part) {
		t.Error("Fig. 2 function reported non-decomposable")
	}
}

func TestSynthesizeRecomposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(4)
		part := partition.Random(n, 1+rng.Intn(n-1), rng)
		tt := randomDecomposable(part, rng)
		m := boolmatrix.Build(tt, part, nil)
		cs, ok := CheckColDecomposable(m)
		if !ok {
			t.Fatal("constructed function rejected")
		}
		d := cs.Synthesize()
		if !d.Recompose().Equal(tt) {
			t.Fatal("Synthesize/Recompose round trip failed")
		}
		// Eval agrees with Recompose pointwise.
		rec := d.Recompose()
		for x := uint64(0); x < uint64(1)<<uint(n); x++ {
			if d.Eval(x) != rec.Bit(int(x)) {
				t.Fatalf("Eval(%d) disagrees with Recompose", x)
			}
		}
	}
}

func TestRowSynthesizeMatchesSetting(t *testing.T) {
	tt, part := fig2Function()
	m := boolmatrix.Build(tt.Component(0), part, nil)
	rs, _ := CheckRowDecomposable(m)
	d := rs.Synthesize()
	if !d.Recompose().Equal(tt.Component(0)) {
		t.Error("row Synthesize/Recompose does not reproduce function")
	}
	// Fig. 1 economics: 4 inputs -> flat 16 bits vs 4 + 2*4 = 12 bits.
	if d.Bits() != 12 {
		t.Errorf("Bits = %d, want 12", d.Bits())
	}
}

func TestDecompositionBitsFig1(t *testing.T) {
	// The paper's Fig. 1: 5 inputs, |B| = 3, |A| = 2 gives 8 + 2*4 = 16
	// bits against a 32-bit flat LUT (2x reduction).
	part := partition.MustNew(5, 0b11000)
	d := &Decomposition{
		Part: part,
		Phi:  bitvec.New(part.Cols()),
		F0:   bitvec.New(part.Rows()),
		F1:   bitvec.New(part.Rows()),
	}
	if d.Bits() != 16 {
		t.Errorf("Fig. 1 bits = %d, want 16", d.Bits())
	}
}

func TestSingleColumnTypeDegenerate(t *testing.T) {
	// A constant function has one column type; V2 must mirror V1 so that
	// EntryValue works for any T.
	part := partition.MustNew(4, 0b0011)
	tt := truthtable.New(4, 1) // all zeros
	m := boolmatrix.Build(tt.Component(0), part, nil)
	cs, ok := CheckColDecomposable(m)
	if !ok {
		t.Fatal("constant function rejected")
	}
	if !cs.V1.Equal(cs.V2) {
		t.Error("degenerate V2 does not mirror V1")
	}
	if !cs.ApproxTable().Equal(tt.Component(0)) {
		t.Error("degenerate setting does not reproduce constant function")
	}
}
