package isinglut

import (
	"context"
	"fmt"
	"math"

	"isinglut/internal/anneal"
	"isinglut/internal/ising"
	"isinglut/internal/metrics"
	"isinglut/internal/sb"
	"isinglut/internal/shard"
)

// IsingProblem is a public builder for standalone second-order Ising
// instances (Eq. 1): E = -sum h_i s_i - 1/2 sum J_ij s_i s_j. It exposes
// the same solver stack the decomposer uses (bSB/aSB/dSB and simulated
// annealing) for unrelated combinatorial problems such as max-cut.
//
// The default builder (NewIsingProblem) stores the couplings densely:
// n² float64 slots, which is the fastest representation up to a few
// thousand spins. NewSparseIsingProblem stores them in CSR form instead,
// so oversized sparse instances (n ≫ 10³) never materialize the dense
// matrix at all — the combination that the sharded solver
// (SBOptions.MaxShard) is built for.
type IsingProblem struct {
	dense  *ising.Dense  // nil for sparse-backed problems
	sparse *ising.Sparse // nil for dense-backed problems
	h      []float64
}

// NewIsingProblem allocates an n-spin problem with zero couplings and
// biases, stored densely.
func NewIsingProblem(n int) *IsingProblem {
	return &IsingProblem{dense: ising.NewDense(n), h: make([]float64, n)}
}

// IsingCoupling is one symmetric coupling entry for the sparse builder:
// J_ij = J_ji accumulate V.
type IsingCoupling struct {
	I, J int
	V    float64
}

// NewSparseIsingProblem builds an n-spin problem from coupling triplets,
// stored in CSR form: memory is O(couplings), never O(n²), so instances
// far beyond the dense builder's reach stay constructible. Duplicate
// coordinates accumulate; diagonal or out-of-range entries are an error.
func NewSparseIsingProblem(n int, couplings []IsingCoupling) (*IsingProblem, error) {
	ts := make([]ising.Triplet, len(couplings))
	for i, c := range couplings {
		ts[i] = ising.Triplet{I: c.I, J: c.J, V: c.V}
	}
	s, err := ising.NewSparseFromTriplets(n, ts)
	if err != nil {
		return nil, err
	}
	return &IsingProblem{sparse: s, h: make([]float64, n)}, nil
}

// coupler returns the problem's coupling matrix under the shared
// interface, whichever representation backs it.
func (p *IsingProblem) coupler() ising.Coupler {
	if p.sparse != nil {
		return p.sparse
	}
	return p.dense
}

// N returns the spin count.
func (p *IsingProblem) N() int { return p.coupler().N() }

// SetCoupling assigns J_ij = J_ji = v (i != j). On a sparse-backed
// problem inserting a new structural entry is O(nnz); bulk construction
// belongs in NewSparseIsingProblem.
func (p *IsingProblem) SetCoupling(i, j int, v float64) {
	if p.sparse != nil {
		p.sparse.Set(i, j, v)
		return
	}
	p.dense.Set(i, j, v)
}

// SetBias assigns h_i = v.
func (p *IsingProblem) SetBias(i int, v float64) { p.h[i] = v }

// Energy evaluates Eq. 1 on a ±1 spin assignment.
func (p *IsingProblem) Energy(spins []int8) float64 {
	return p.problem().Energy(spins)
}

// Validate reports whether the problem is numerically well-formed:
// every coupling and bias must be finite. A single NaN or ±Inf input
// poisons the whole oscillator state within one field product, so the
// solvers reject such problems up front with an error instead of
// running to a meaningless diverged result.
func (p *IsingProblem) Validate() error {
	finite := true
	if p.sparse != nil {
		finite = p.sparse.AllFinite()
	} else {
		finite = p.dense.AllFinite()
	}
	if !finite {
		return fmt.Errorf("isinglut: problem has a non-finite coupling (NaN or ±Inf)")
	}
	for i, h := range p.h {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return fmt.Errorf("isinglut: non-finite bias h[%d] = %g", i, h)
		}
	}
	return nil
}

func (p *IsingProblem) problem() *ising.Problem {
	prob, err := ising.NewProblem(p.coupler(), p.h, 0)
	if err != nil {
		panic(err) // builder keeps dimensions consistent
	}
	return prob
}

// SBVariant selects the simulated-bifurcation update rule.
type SBVariant = sb.Variant

// Simulated-bifurcation variants.
const (
	BallisticSB = sb.Ballistic
	AdiabaticSB = sb.Adiabatic
	DiscreteSB  = sb.Discrete
)

// SBOptions configures SolveIsing's simulated-bifurcation run.
type SBOptions struct {
	Variant SBVariant
	// Steps caps the Euler iterations (default 1000).
	Steps int
	// Dt is the Euler step (default 1.0).
	Dt float64
	// Seed drives the deterministic initial conditions.
	Seed int64
	// DynamicStop enables the paper's variance-based stop criterion with
	// window F samples every F iterations and threshold Epsilon.
	DynamicStop bool
	F, S        int
	Epsilon     float64
	// Trace records the sampled energies in the result.
	Trace bool
	// Replicas > 1 runs that many independent trajectories (seeds
	// Seed, Seed+1, ...) and keeps the best — the software counterpart of
	// SB hardware's parallel replica execution. Workers bounds their
	// concurrency (0 = GOMAXPROCS); results are deterministic for a fixed
	// seed regardless of Workers.
	Replicas int
	Workers  int
	// Fused forces the fused replica engine: all replicas advance in
	// lock-step so each Euler step streams the coupling matrix once for
	// the whole batch instead of once per replica. Multi-replica solves
	// without Trace already use the fused engine automatically; the flag
	// exists to pin the engine explicitly (e.g. for benchmarking) and is
	// rejected with an error when combined with Trace, which needs
	// per-replica control flow. Results are bit-identical either way.
	Fused bool
	// Rescue enables the one-shot divergence rescue: a trajectory whose
	// dynamics overflow the finite range is re-seeded once from its own
	// seed with a halved time step instead of being quarantined with
	// energy +Inf. Off by default — a diverged run then reports
	// StopReason "diverged" and IsingResult.Diverged.
	Rescue bool
	// Sparse routes the solve through the CSR sparse coupler when the
	// problem's density is at or below the auto-pick threshold
	// (ising.DefaultSparseDensity); denser problems keep the dense kernel.
	// Results are bit-identical either way — the flag only changes the
	// field-kernel cost, trading the dense kernel's n² streaming for an
	// nnz-bound walk.
	Sparse bool
	// Quantize enables the int8/int16 fixed-point dSB fast path: the
	// coupling is quantized once per solve and the per-step field product
	// runs on integer accumulation, rescaling only at sample points
	// (energies always evaluate against the exact float coupling).
	// Requires Variant == DiscreteSB — the other variants need the
	// continuous positions in the field product — and changes numerics
	// within the envelope pinned by the differential tests.
	// IsingResult.Quantized reports whether the fast path actually ran; a
	// coupling that fails to quantize falls back to float64 silently.
	Quantize bool
	// BitPack layers the popcount fast path on top of Quantize: the
	// quantized codes are re-packed into sign+magnitude bit-planes and
	// every per-step field product runs on AND+POPCNT sweeps over packed
	// ±1 spin masks — bit-identical to the Quantize path (same integer
	// fields, same trajectories, same spins), so it changes throughput
	// only. Requires Variant == DiscreteSB and implies Quantize.
	// IsingResult.BitPacked reports whether the packed kernels actually
	// ran: a coupling that fails to quantize falls back to float64, and
	// one whose density × width heuristic rejects packing (tiny or very
	// sparse instances) stays on the scalar quantized kernels.
	BitPack bool
	// MaxShard > 0 routes the solve through the shard-and-exchange
	// decomposition layer: the coupling graph is split into subproblems
	// of at most MaxShard spins (greedy |J|-weighted growth), each is
	// solved on the batch engine with its boundary spins clamped to the
	// current global state, and exchange rounds iterate until the global
	// energy stabilizes. This is the path for instances one SB solve
	// cannot hold; Trace is not supported through it and Fused is
	// meaningless (the shard layer drives the batch engine itself).
	MaxShard int
	// ShardRounds bounds the exchange rounds of a sharded solve
	// (default 12). Only meaningful with MaxShard > 0.
	ShardRounds int
}

// IsingResult reports a standalone Ising solve.
type IsingResult struct {
	Spins      []int8
	Energy     float64
	Iterations int
	Stopped    bool // dynamic stop fired
	// Trace holds the sampled energies when requested; SampleEvery is the
	// iteration period between samples.
	Trace       []float64
	SampleEvery int
	// Replicas is the number of trajectories run (1 for a single solve);
	// EarlyStops counts the replicas whose dynamic stop fired. For a batch
	// the scalar fields above describe the winning replica.
	Replicas   int
	EarlyStops int
	// StopReason states how the run ended: "converged", "max-iters",
	// "cancelled", "deadline", "diverged" or "failed". Interrupted runs
	// ("cancelled"/"deadline") still return the best state found before
	// the interruption.
	StopReason string
	// Diverged reports that the winning trajectory's dynamics overflowed
	// the finite range: Energy is +Inf and Spins hold the best finite
	// state observed before the overflow (for a batch, every replica
	// diverged — a finite replica always outranks a diverged one).
	Diverged bool
	// Rescued reports that the winning trajectory recovered from a
	// detected divergence via the one-shot re-seed (SBOptions.Rescue).
	Rescued bool
	// DivergedReplicas counts the batch replicas quarantined for
	// divergence (0 or 1 for a single solve).
	DivergedReplicas int
	// Quantized reports that the solve ran on the fixed-point field
	// kernels (SBOptions.Quantize accepted and the coupling quantized).
	Quantized bool
	// BitPacked reports that the solve ran on the bit-packed popcount
	// kernels (SBOptions.BitPack accepted by the packing heuristic).
	BitPacked bool
	// Shards is the partition size of a sharded solve (0 for a direct
	// solve); ExchangeRounds the exchange rounds it executed.
	Shards         int
	ExchangeRounds int
}

// SolveIsing searches the problem's ground state with simulated
// bifurcation. It is SolveIsingContext with a background context.
func SolveIsing(p *IsingProblem, opts SBOptions) (IsingResult, error) {
	return SolveIsingContext(context.Background(), p, opts)
}

// SolveIsingContext is SolveIsing under a context: cancellation or a
// deadline interrupts the run at the next sample point and returns the
// best-so-far state with StopReason set, never an error.
func SolveIsingContext(ctx context.Context, p *IsingProblem, opts SBOptions) (IsingResult, error) {
	if opts.MaxShard > 0 {
		return SolveIsingShardedContext(ctx, p, opts, nil)
	}
	if err := p.Validate(); err != nil {
		return IsingResult{}, err
	}
	if math.IsNaN(opts.Dt) || math.IsInf(opts.Dt, 0) {
		return IsingResult{}, fmt.Errorf("isinglut: Dt must be finite, got %g", opts.Dt)
	}
	if math.IsNaN(opts.Epsilon) || math.IsInf(opts.Epsilon, 0) {
		return IsingResult{}, fmt.Errorf("isinglut: Epsilon must be finite, got %g", opts.Epsilon)
	}
	params := sb.DefaultParams()
	params.Variant = opts.Variant
	if opts.Steps > 0 {
		params.Steps = opts.Steps
	}
	if opts.Dt > 0 {
		params.Dt = opts.Dt
	}
	params.Seed = opts.Seed
	params.RescueDiverged = opts.Rescue
	if opts.DynamicStop {
		f, s, eps := opts.F, opts.S, opts.Epsilon
		if f <= 0 {
			f = 20
		}
		if s <= 1 {
			s = 20
		}
		if eps <= 0 {
			eps = 1e-8
		}
		params.Stop = &sb.StopCriteria{F: f, S: s, Epsilon: eps}
	}
	if opts.Trace {
		params.RecordTrace = true
		if params.SampleEvery <= 0 && params.Stop == nil {
			params.SampleEvery = 10
		}
	}
	if opts.Fused && opts.Trace {
		return IsingResult{}, fmt.Errorf("isinglut: Fused and Trace are mutually exclusive (trace recording needs per-replica control flow)")
	}
	if opts.Quantize && opts.Variant != DiscreteSB {
		return IsingResult{}, fmt.Errorf("isinglut: Quantize requires the DiscreteSB variant (got %s)", opts.Variant)
	}
	if opts.BitPack && opts.Variant != DiscreteSB {
		return IsingResult{}, fmt.Errorf("isinglut: BitPack requires the DiscreteSB variant (got %s)", opts.Variant)
	}
	params.Quantize = opts.Quantize
	params.BitPack = opts.BitPack
	prob := p.problem()
	if opts.Sparse && p.dense != nil {
		// Auto-pick: CSR when the instance is sparse enough to win, the
		// original dense coupler otherwise. Bit-identical results either
		// way, so the flag is purely a performance hint. (A sparse-backed
		// problem is already CSR, so the flag is a no-op there.)
		prob.Coup = ising.CompactCoupler(p.dense)
	}
	replicas := 1
	earlyStops := 0
	divergedReplicas := 0
	var res sb.Result
	stopReason := ""
	if opts.Replicas > 1 || opts.Fused {
		nrep := opts.Replicas
		if nrep < 1 {
			nrep = 1
		}
		fuse := sb.FuseAuto
		if opts.Fused {
			fuse = sb.FuseOn
		}
		batch, stats := sb.SolveBatch(ctx, prob, sb.BatchParams{
			Base:     params,
			Replicas: nrep,
			Workers:  opts.Workers,
			Fused:    fuse,
		})
		res = batch
		replicas = stats.Replicas
		earlyStops = stats.EarlyStops
		divergedReplicas = stats.Diverges
		stopReason = stats.BatchStopped.String()
	} else {
		res = sb.SolveContext(ctx, prob, params)
		if res.StoppedEarly {
			earlyStops = 1
		}
		if res.Diverged {
			divergedReplicas = 1
		}
		stopReason = res.Stopped.String()
	}
	sampleEvery := params.SampleEvery
	if sampleEvery <= 0 && params.Stop != nil {
		sampleEvery = params.Stop.F
	}
	if sampleEvery <= 0 {
		sampleEvery = params.Steps
	}
	return IsingResult{
		Spins:            res.Spins,
		Energy:           res.Energy,
		Iterations:       res.Iterations,
		Stopped:          res.StoppedEarly,
		Trace:            res.Trace,
		SampleEvery:      sampleEvery,
		Replicas:         replicas,
		EarlyStops:       earlyStops,
		StopReason:       stopReason,
		Diverged:         res.Diverged,
		Rescued:          res.Rescued,
		DivergedReplicas: divergedReplicas,
		Quantized:        res.Quantized,
		BitPacked:        res.BitPacked,
	}, nil
}

// ShardDispatcher runs one shard subproblem somewhere — the serve layer
// implements it to dispatch sub-solves to peer daemons over /v1/solve.
// Implementations must be safe for concurrent calls and deterministic
// per SubProblem.Seed.
type ShardDispatcher = shard.Dispatcher

// SolveIsingShardedContext solves the problem through the
// shard-and-exchange decomposition layer: split the coupling graph into
// subproblems of at most opts.MaxShard spins, solve each with its
// boundary clamped to the current global state, and iterate exchange
// rounds until the global energy stabilizes, the round budget runs out,
// or the context fires (best-so-far is returned either way, with
// StopReason recorded). d routes the sub-solves; nil runs them
// in-process on the batch engine. SolveIsingContext forwards here
// automatically when opts.MaxShard > 0.
func SolveIsingShardedContext(ctx context.Context, p *IsingProblem, opts SBOptions, d ShardDispatcher) (IsingResult, error) {
	if err := p.Validate(); err != nil {
		return IsingResult{}, err
	}
	if opts.MaxShard <= 0 {
		return IsingResult{}, fmt.Errorf("isinglut: sharded solve needs MaxShard > 0, got %d", opts.MaxShard)
	}
	if opts.ShardRounds < 0 {
		return IsingResult{}, fmt.Errorf("isinglut: ShardRounds must be non-negative, got %d", opts.ShardRounds)
	}
	if opts.Trace {
		return IsingResult{}, fmt.Errorf("isinglut: Trace is not supported with MaxShard (no single trajectory to trace)")
	}
	if math.IsNaN(opts.Dt) || math.IsInf(opts.Dt, 0) {
		return IsingResult{}, fmt.Errorf("isinglut: Dt must be finite, got %g", opts.Dt)
	}
	if math.IsNaN(opts.Epsilon) || math.IsInf(opts.Epsilon, 0) {
		return IsingResult{}, fmt.Errorf("isinglut: Epsilon must be finite, got %g", opts.Epsilon)
	}
	if opts.Quantize && opts.Variant != DiscreteSB {
		return IsingResult{}, fmt.Errorf("isinglut: Quantize requires the DiscreteSB variant (got %s)", opts.Variant)
	}
	if opts.BitPack && opts.Variant != DiscreteSB {
		return IsingResult{}, fmt.Errorf("isinglut: BitPack requires the DiscreteSB variant (got %s)", opts.Variant)
	}
	res, err := shard.Solve(ctx, p.problem(), shard.Config{
		MaxShard: opts.MaxShard,
		Rounds:   opts.ShardRounds,
		Workers:  opts.Workers,
		Seed:     opts.Seed,
		Replicas: opts.Replicas,
		Base:     shardBaseParams(opts),
		Dispatch: d,
	})
	if err != nil {
		return IsingResult{}, err
	}
	replicas := opts.Replicas
	if replicas < 1 {
		replicas = 1
	}
	return IsingResult{
		Spins:          res.Spins,
		Energy:         res.Energy,
		Iterations:     res.Iterations,
		Stopped:        res.Stopped == metrics.StopConverged,
		Replicas:       replicas,
		StopReason:     res.Stopped.String(),
		Quantized:      res.Quantized,
		BitPacked:      res.BitPacked,
		Shards:         res.Shards,
		ExchangeRounds: res.Rounds,
	}, nil
}

// shardBaseParams maps SBOptions onto the per-subproblem SB
// parameterization of a sharded solve — the single source of truth for
// both the in-process default dispatcher and the serve-layer
// coordinator's local fallback, so the two paths stay bit-identical.
func shardBaseParams(opts SBOptions) sb.Params {
	base := sb.DefaultParamsFor(opts.Variant)
	if opts.Steps > 0 {
		base.Steps = opts.Steps
	}
	if opts.Dt > 0 {
		base.Dt = opts.Dt
	}
	base.RescueDiverged = opts.Rescue
	base.Quantize = opts.Quantize
	base.BitPack = opts.BitPack
	if opts.DynamicStop {
		f, s, eps := opts.F, opts.S, opts.Epsilon
		if f <= 0 {
			f = 20
		}
		if s <= 1 {
			s = 20
		}
		if eps <= 0 {
			eps = 1e-8
		}
		base.Stop = &sb.StopCriteria{F: f, S: s, Epsilon: eps}
	}
	return base
}

// NewLocalShardDispatcher returns the in-process sub-solve dispatcher a
// sharded solve uses by default, parameterized exactly as
// SolveIsingShardedContext(..., nil) would. The serve-layer coordinator
// holds one as its breaker-guarded local fallback: a sub-solve that
// fails over from a peer to this dispatcher produces the bit-identical
// result the peer would have returned.
func NewLocalShardDispatcher(opts SBOptions) ShardDispatcher {
	return &shard.LocalDispatcher{Base: shardBaseParams(opts), Replicas: opts.Replicas}
}

// AnnealIsing searches the problem's ground state with simulated
// annealing (sweeps full passes, geometric cooling tStart -> tEnd). It is
// AnnealIsingContext with a background context.
func AnnealIsing(p *IsingProblem, sweeps int, tStart, tEnd float64, seed int64) (IsingResult, error) {
	return AnnealIsingContext(context.Background(), p, sweeps, tStart, tEnd, seed)
}

// AnnealIsingContext is AnnealIsing under a context: cancellation or a
// deadline interrupts the schedule at the next sweep boundary and returns
// the best-so-far state with StopReason set.
func AnnealIsingContext(ctx context.Context, p *IsingProblem, sweeps int, tStart, tEnd float64, seed int64) (IsingResult, error) {
	if err := p.Validate(); err != nil {
		return IsingResult{}, err
	}
	// The comparisons below are written so a NaN temperature fails them
	// too (NaN > 0 is false), not just negative or inverted schedules.
	if sweeps <= 0 || !(tStart > 0) || !(tEnd > 0) || tEnd > tStart || math.IsInf(tStart, 0) {
		return IsingResult{}, fmt.Errorf("isinglut: invalid annealing schedule (sweeps=%d, T %g->%g)", sweeps, tStart, tEnd)
	}
	res := anneal.Solve(ctx, p.problem(), anneal.Params{Sweeps: sweeps, TStart: tStart, TEnd: tEnd, Seed: seed})
	return IsingResult{
		Spins:      res.Spins,
		Energy:     res.Energy,
		Iterations: res.Sweeps,
		Replicas:   1,
		StopReason: res.Stopped.String(),
	}, nil
}
