package isinglut_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"isinglut"
)

func quickOptions(n int) isinglut.Options {
	opts := isinglut.DefaultOptions(n)
	opts.Partitions = 3
	opts.Rounds = 2
	return opts
}

func TestDefaultOptionsMatchPaperSchemes(t *testing.T) {
	if o := isinglut.DefaultOptions(9); o.FreeSize != 4 {
		t.Errorf("n=9: FreeSize %d, paper scheme says 4", o.FreeSize)
	}
	if o := isinglut.DefaultOptions(16); o.FreeSize != 7 {
		t.Errorf("n=16: FreeSize %d, paper scheme says 7", o.FreeSize)
	}
}

func TestDecomposeEndToEnd(t *testing.T) {
	exact, err := isinglut.Benchmark("erf", 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := isinglut.Decompose(exact, quickOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.MED <= 0 {
		t.Error("expected nonzero MED for approximate decomposition")
	}
	// The LUT design must reproduce the approximation bit-exactly.
	if !res.Design.Table().Equal(res.Approx) {
		t.Fatal("design does not reproduce approximation")
	}
	// Error metrics must agree with direct evaluation.
	er, med, err := isinglut.Error(exact, res.Approx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(er-res.ER) > 1e-12 || math.Abs(med-res.MED) > 1e-12 {
		t.Fatalf("reported (%g,%g), direct (%g,%g)", res.ER, res.MED, er, med)
	}
	// All 9 components decomposed: compression ratio (2^9*9)/(9*(32+2*16)).
	want := float64(512*9) / float64(9*(32+2*16))
	if math.Abs(res.Design.CompressionRatio()-want) > 1e-9 {
		t.Errorf("compression ratio %g, want %g", res.Design.CompressionRatio(), want)
	}
	if res.CoreSolves != 2*9*3 {
		t.Errorf("CoreSolves = %d", res.CoreSolves)
	}
}

func TestDecomposeAllMethods(t *testing.T) {
	exact, err := isinglut.Benchmark("cos", 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []isinglut.Method{
		isinglut.MethodProposed, isinglut.MethodDALTA, isinglut.MethodBA, isinglut.MethodAltMin,
	} {
		opts := quickOptions(9)
		opts.Rounds = 1
		opts.Partitions = 2
		opts.Method = m
		res, err := isinglut.Decompose(exact, opts)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for k, c := range res.Components {
			if c == nil {
				t.Fatalf("%s: component %d missing", m, k)
			}
			if !isinglut.ExactlyDecomposable(res.Approx, k, c.Partition) {
				t.Fatalf("%s: component %d not decomposable over committed partition", m, k)
			}
		}
	}
}

func TestDecomposeUnknownMethod(t *testing.T) {
	exact, _ := isinglut.Benchmark("cos", 9)
	opts := quickOptions(9)
	opts.Method = "quantum"
	if _, err := isinglut.Decompose(exact, opts); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestExactDecomposeFig1Style(t *testing.T) {
	// A 5-input function built as H(G(x1,x2,x3), x4, x5) decomposes
	// exactly over bound set {x1,x2,x3}; the synthesized pair halves the
	// LUT cost (Fig. 1).
	g := func(x uint64) uint64 { // 3-input majority
		b := (x & 1) + (x >> 1 & 1) + (x >> 2 & 1)
		if b >= 2 {
			return 1
		}
		return 0
	}
	f := isinglut.FunctionFromFunc(5, 1, func(x uint64) uint64 {
		phi := g(x & 7)
		a := x >> 3 & 3
		return phi ^ (a & 1) ^ (a >> 1) // H(phi, x4, x5)
	})
	part, err := isinglut.NewPartition(5, 0b11000) // A = {x4,x5}, B = {x1,x2,x3}
	if err != nil {
		t.Fatal(err)
	}
	if !isinglut.ExactlyDecomposable(f, 0, part) {
		t.Fatal("constructed function not decomposable")
	}
	d, ok := isinglut.ExactDecompose(f, 0, part)
	if !ok {
		t.Fatal("ExactDecompose failed")
	}
	if d.Bits() != 16 { // 8 (phi) + 2*4 (F) vs 32 flat: the paper's 2x
		t.Errorf("bits = %d, want 16", d.Bits())
	}
	for x := uint64(0); x < 32; x++ {
		if d.Eval(x) != int(f.Output(x)) {
			t.Fatalf("decomposition wrong at %d", x)
		}
	}
}

func TestQuantizePublic(t *testing.T) {
	f, lo, hi, err := isinglut.Quantize(isinglut.QuantizeSpec{
		NumInputs: 6, NumOutputs: 6, InLo: 0, InHi: 1,
	}, func(x float64) float64 { return x * x })
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 1 {
		t.Errorf("range [%g,%g]", lo, hi)
	}
	if f.Output(63) != 63 {
		t.Errorf("top code %d", f.Output(63))
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := isinglut.BenchmarkNames()
	if len(names) != 10 {
		t.Fatalf("%d benchmarks", len(names))
	}
	for _, name := range names {
		if _, err := isinglut.Benchmark(name, 8); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestWeightedDistributionDecompose(t *testing.T) {
	exact, _ := isinglut.Benchmark("erf", 9)
	weights := make([]float64, 512)
	for i := range weights {
		weights[i] = float64(i%7) + 1
	}
	dist, err := isinglut.WeightedDistribution(9, weights)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOptions(9)
	opts.Dist = dist
	res, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	er, med, _ := isinglut.Error(exact, res.Approx, dist)
	if math.Abs(er-res.ER) > 1e-12 || math.Abs(med-res.MED) > 1e-12 {
		t.Fatal("weighted metrics inconsistent")
	}
}

func TestDecomposeReproducible(t *testing.T) {
	exact, _ := isinglut.Benchmark("ln", 9)
	opts := quickOptions(9)
	a, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.MED != b.MED || !a.Approx.Equal(b.Approx) {
		t.Fatal("same options+seed produced different results")
	}
}

func TestRoundTraceLengthAndMonotone(t *testing.T) {
	exact, _ := isinglut.Benchmark("tan", 9)
	opts := quickOptions(9)
	opts.Rounds = 3
	res, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundTrace) != 3 {
		t.Fatalf("trace length %d", len(res.RoundTrace))
	}
	for i := 1; i < len(res.RoundTrace); i++ {
		if res.RoundTrace[i] > res.RoundTrace[i-1]+1e-9 {
			t.Fatalf("MED increased across rounds: %v", res.RoundTrace)
		}
	}
}

func TestWriteVerilogPublic(t *testing.T) {
	exact, _ := isinglut.Benchmark("erf", 8)
	opts := quickOptions(8)
	opts.Rounds = 1
	opts.Partitions = 2
	res, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := isinglut.WriteVerilog(&buf, res.Design, "dut"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "module dut") {
		t.Error("verilog output missing module")
	}
	hw := isinglut.EstimateHardware(res.Design)
	if hw.Area <= 0 || hw.Energy <= 0 || hw.Latency <= 0 {
		t.Errorf("implausible hardware estimate %+v", hw)
	}
}

func TestDecomposeWithOverlapPublic(t *testing.T) {
	exact, _ := isinglut.Benchmark("cos", 8)
	opts := quickOptions(8)
	opts.Rounds = 1
	opts.Partitions = 2
	base, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Overlap = 1
	over, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	if over.Design.TotalBits() <= base.Design.TotalBits() {
		t.Error("overlap did not grow the LUT budget")
	}
}

func TestDecomposeParallelPublic(t *testing.T) {
	exact, _ := isinglut.Benchmark("ln", 8)
	opts := quickOptions(8)
	serial, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	parallel, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MED != parallel.MED || !serial.Approx.Equal(parallel.Approx) {
		t.Error("parallel Decompose differs from serial")
	}
}

func TestAcceleratorPublic(t *testing.T) {
	exact, _ := isinglut.Benchmark("sqrt", 8)
	opts := quickOptions(8)
	opts.Rounds = 1
	opts.Partitions = 2
	res, err := isinglut.Decompose(exact, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc := isinglut.NewAccelerator(res.Design)
	workload := isinglut.SineWorkload(8, 256, 2)
	quality, stats, err := isinglut.EvaluateAccelerator(acc, exact, workload)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lookups != 256 || stats.EnergyFJ <= 0 {
		t.Fatalf("stats %+v", stats)
	}
	if quality.Samples != 256 {
		t.Fatalf("quality %+v", quality)
	}
	// Full-domain profile mass sums to 1.
	hist, err := isinglut.Profile(exact, res.Approx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hist.TotalMass()-1) > 1e-9 {
		t.Fatalf("histogram mass %g", hist.TotalMass())
	}
	// Ramp workload covers the whole domain.
	ramp := isinglut.RampWorkload(8)
	if len(ramp) != 256 || ramp[255] != 255 {
		t.Fatal("ramp workload wrong")
	}
}
