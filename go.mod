module isinglut

go 1.22
