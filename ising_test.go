package isinglut_test

import (
	"math"
	"testing"

	"isinglut"
)

// maxCutProblem encodes max-cut of a small graph: J_ij = -w_ij so that
// cutting (opposite spins) is rewarded.
func maxCutProblem() *isinglut.IsingProblem {
	// 5-cycle with unit weights: max cut = 4.
	p := isinglut.NewIsingProblem(5)
	for i := 0; i < 5; i++ {
		p.SetCoupling(i, (i+1)%5, -1)
	}
	return p
}

func cutSize(spins []int8) int {
	cut := 0
	for i := 0; i < 5; i++ {
		if spins[i] != spins[(i+1)%5] {
			cut++
		}
	}
	return cut
}

func TestSolveIsingMaxCut(t *testing.T) {
	p := maxCutProblem()
	best := 0
	for seed := int64(0); seed < 5; seed++ {
		res, err := isinglut.SolveIsing(p, isinglut.SBOptions{Steps: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if c := cutSize(res.Spins); c > best {
			best = c
		}
	}
	if best != 4 {
		t.Fatalf("best cut %d, want 4", best)
	}
}

func TestSolveIsingVariants(t *testing.T) {
	p := maxCutProblem()
	for _, v := range []isinglut.SBVariant{isinglut.BallisticSB, isinglut.AdiabaticSB, isinglut.DiscreteSB} {
		opts := isinglut.SBOptions{Variant: v, Steps: 500, Seed: 1}
		if v == isinglut.AdiabaticSB {
			opts.Dt = 0.5
		}
		res, err := isinglut.SolveIsing(p, opts)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if math.Abs(p.Energy(res.Spins)-res.Energy) > 1e-9 {
			t.Fatalf("%v: energy inconsistent", v)
		}
	}
}

func TestSolveIsingDynamicStop(t *testing.T) {
	p := isinglut.NewIsingProblem(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			p.SetCoupling(i, j, 1)
		}
	}
	res, err := isinglut.SolveIsing(p, isinglut.SBOptions{
		Steps: 100000, Seed: 2, DynamicStop: true, F: 10, S: 5, Epsilon: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("dynamic stop did not fire")
	}
	if res.Energy != -15 {
		t.Fatalf("energy %g, want -15", res.Energy)
	}
}

func TestAnnealIsing(t *testing.T) {
	p := maxCutProblem()
	res, err := isinglut.AnnealIsing(p, 200, 2.0, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cutSize(res.Spins) != 4 {
		t.Fatalf("SA cut %d, want 4", cutSize(res.Spins))
	}
}

func TestAnnealIsingValidation(t *testing.T) {
	p := maxCutProblem()
	bad := [][4]float64{
		{0, 2, 1e-3, 0},  // sweeps 0
		{10, 0, 1e-3, 0}, // tStart 0
		{10, 2, 0, 0},    // tEnd 0
		{10, 1, 2, 0},    // tEnd > tStart
	}
	for i, c := range bad {
		if _, err := isinglut.AnnealIsing(p, int(c[0]), c[1], c[2], 0); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestIsingProblemBiasAndEnergy(t *testing.T) {
	p := isinglut.NewIsingProblem(2)
	p.SetBias(0, 1)
	p.SetBias(1, -1)
	p.SetCoupling(0, 1, 0.5)
	// E(+,-) = -(1*1 + (-1)(-1)) - 0.5*0.5*(+1)(-1)*2 = -2 + 0.5 = -1.5
	if got := p.Energy([]int8{1, -1}); math.Abs(got-(-1.5)) > 1e-12 {
		t.Fatalf("Energy = %g, want -1.5", got)
	}
	if p.N() != 2 {
		t.Fatal("N wrong")
	}
}

// TestSolveIsingFused pins the public Fused option: forcing the fused
// engine returns exactly the same result as the default (auto) and the
// explicit multi-replica path, and the incompatible Fused+Trace
// combination is rejected up front.
func TestSolveIsingFused(t *testing.T) {
	p := maxCutProblem()
	base := isinglut.SBOptions{Steps: 400, Seed: 9, Replicas: 4}
	auto, err := isinglut.SolveIsing(p, base)
	if err != nil {
		t.Fatal(err)
	}
	forced := base
	forced.Fused = true
	fused, err := isinglut.SolveIsing(p, forced)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Energy != auto.Energy || fused.Iterations != auto.Iterations ||
		fused.Replicas != auto.Replicas || fused.EarlyStops != auto.EarlyStops {
		t.Fatalf("fused result (E=%g, it=%d) != auto result (E=%g, it=%d)",
			fused.Energy, fused.Iterations, auto.Energy, auto.Iterations)
	}
	for i := range fused.Spins {
		if fused.Spins[i] != auto.Spins[i] {
			t.Fatalf("fused spins differ at %d", i)
		}
	}

	// Fused with a single trajectory still answers (a 1-replica batch).
	single, err := isinglut.SolveIsing(p, isinglut.SBOptions{Steps: 400, Seed: 9, Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	if single.Replicas != 1 || len(single.Spins) != p.N() {
		t.Fatalf("single fused solve: %d replicas, %d spins", single.Replicas, len(single.Spins))
	}

	// Trace needs per-replica control flow the fused engine refuses.
	bad := base
	bad.Fused = true
	bad.Trace = true
	if _, err := isinglut.SolveIsing(p, bad); err == nil {
		t.Fatal("Fused+Trace accepted, want an error")
	}
}

// TestSolveIsingSparseBitIdentity: the Sparse hint routes a low-density
// instance onto the CSR coupler, which must not change a single bit of
// the result — only which kernel streams J.
func TestSolveIsingSparseBitIdentity(t *testing.T) {
	n := 64
	p := isinglut.NewIsingProblem(n)
	for i := 0; i < n; i++ {
		p.SetCoupling(i, (i+1)%n, -1) // ring: ~3% dense, CSR auto-picks
	}
	for _, v := range []isinglut.SBVariant{isinglut.BallisticSB, isinglut.DiscreteSB} {
		for _, replicas := range []int{1, 4} {
			opts := isinglut.SBOptions{Variant: v, Steps: 300, Seed: 7, Replicas: replicas}
			dense, err := isinglut.SolveIsing(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Sparse = true
			sparse, err := isinglut.SolveIsing(p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(dense.Energy) != math.Float64bits(sparse.Energy) ||
				dense.Iterations != sparse.Iterations {
				t.Fatalf("%v r=%d: dense (E=%.17g, it=%d) != sparse (E=%.17g, it=%d)",
					v, replicas, dense.Energy, dense.Iterations, sparse.Energy, sparse.Iterations)
			}
			for i := range dense.Spins {
				if dense.Spins[i] != sparse.Spins[i] {
					t.Fatalf("%v r=%d: spins differ at %d", v, replicas, i)
				}
			}
		}
	}
}

// TestSolveIsingQuantize: Quantize outside DiscreteSB is a validation
// error; on the unit-coupling max-cut instance (losslessly quantizable)
// the fast path runs and is bit-identical to the float dSB solve.
func TestSolveIsingQuantize(t *testing.T) {
	p := maxCutProblem()
	if _, err := isinglut.SolveIsing(p, isinglut.SBOptions{Variant: isinglut.BallisticSB, Quantize: true}); err == nil {
		t.Fatal("Quantize accepted outside DiscreteSB, want an error")
	}

	opts := isinglut.SBOptions{Variant: isinglut.DiscreteSB, Steps: 500, Seed: 1}
	exact, err := isinglut.SolveIsing(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Quantize = true
	quant, err := isinglut.SolveIsing(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !quant.Quantized {
		t.Fatal("quantized fast path not taken")
	}
	if exact.Quantized {
		t.Fatal("float solve reports Quantized")
	}
	if math.Float64bits(exact.Energy) != math.Float64bits(quant.Energy) ||
		exact.Iterations != quant.Iterations {
		t.Fatalf("lossless quantization moved the trajectory: (E=%.17g, it=%d) vs (E=%.17g, it=%d)",
			exact.Energy, exact.Iterations, quant.Energy, quant.Iterations)
	}
	if math.Abs(p.Energy(quant.Spins)-quant.Energy) > 1e-9 {
		t.Fatal("reported energy inconsistent with spins under exact J")
	}
}
