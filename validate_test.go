package isinglut_test

import (
	"math"
	"strings"
	"testing"

	"isinglut"
)

// TestSolveIsingRejectsNonFiniteProblem: a single NaN or ±Inf coupling
// or bias poisons the whole oscillator state within one field product,
// so the public solvers must reject such problems up front with an error
// instead of running to a meaningless diverged result.
func TestSolveIsingRejectsNonFiniteProblem(t *testing.T) {
	cases := []struct {
		name  string
		build func() *isinglut.IsingProblem
		want  string
	}{
		{"nan coupling", func() *isinglut.IsingProblem {
			p := isinglut.NewIsingProblem(4)
			p.SetCoupling(0, 1, math.NaN())
			return p
		}, "coupling"},
		{"inf coupling", func() *isinglut.IsingProblem {
			p := isinglut.NewIsingProblem(4)
			p.SetCoupling(1, 2, math.Inf(-1))
			return p
		}, "coupling"},
		{"nan bias", func() *isinglut.IsingProblem {
			p := isinglut.NewIsingProblem(4)
			p.SetBias(2, math.NaN())
			return p
		}, "bias"},
		{"inf bias", func() *isinglut.IsingProblem {
			p := isinglut.NewIsingProblem(4)
			p.SetBias(0, math.Inf(1))
			return p
		}, "bias"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			if err := p.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
			if _, err := isinglut.SolveIsing(p, isinglut.SBOptions{Steps: 10}); err == nil {
				t.Fatal("SolveIsing accepted a non-finite problem")
			}
			if _, err := isinglut.AnnealIsing(p, 10, 2, 0.1, 1); err == nil {
				t.Fatal("AnnealIsing accepted a non-finite problem")
			}
		})
	}
}

// TestSolveIsingRejectsNonFiniteOptions: NaN/Inf solver knobs must fail
// fast instead of seeding NaN dynamics (Dt) or a never-firing stop
// criterion (Epsilon).
func TestSolveIsingRejectsNonFiniteOptions(t *testing.T) {
	p := isinglut.NewIsingProblem(4)
	p.SetCoupling(0, 1, -1)
	for _, dt := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := isinglut.SolveIsing(p, isinglut.SBOptions{Steps: 10, Dt: dt}); err == nil {
			t.Fatalf("SolveIsing accepted Dt = %g", dt)
		}
	}
	if _, err := isinglut.SolveIsing(p, isinglut.SBOptions{
		Steps: 10, DynamicStop: true, Epsilon: math.NaN(),
	}); err == nil {
		t.Fatal("SolveIsing accepted Epsilon = NaN")
	}
}

// TestAnnealIsingRejectsNaNSchedule: the schedule comparisons are written
// so NaN temperatures fail them (NaN > 0 is false), not just negative or
// inverted ranges.
func TestAnnealIsingRejectsNaNSchedule(t *testing.T) {
	p := isinglut.NewIsingProblem(4)
	p.SetCoupling(0, 1, -1)
	for _, schedule := range [][2]float64{
		{math.NaN(), 0.1},
		{2, math.NaN()},
		{math.Inf(1), 0.1},
	} {
		if _, err := isinglut.AnnealIsing(p, 10, schedule[0], schedule[1], 1); err == nil {
			t.Fatalf("AnnealIsing accepted schedule T %g -> %g", schedule[0], schedule[1])
		}
	}
}
